"""Typed request/response contracts of the serving layer.

Requests carry either a rasterized 0/1 clip image or raw clip geometry
(a :class:`~repro.litho.geometry.Clip`); geometry requests are
rasterized by the service through its LRU raster cache.  Responses are
frozen dataclasses so callers can treat them as immutable records.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from ..litho.geometry import Clip

__all__ = [
    "ClipRequest",
    "Prediction",
    "ScanRequest",
    "ScanHit",
    "ScanReport",
    "ChipScanRequest",
    "ChipScanReport",
    "HealthState",
    "HealthReport",
]


class HealthState(enum.Enum):
    """Coarse service health for load balancers and operators.

    ``READY`` — serving normally.  ``DEGRADED`` — serving, but faults
    (sheds, timeouts, quarantined requests, degraded scans, errors)
    have been observed since the metrics were last reset; responses may
    be partial.  ``DRAINING`` — ``close()`` has begun; no new requests
    are admitted.
    """

    READY = "ready"
    DEGRADED = "degraded"
    DRAINING = "draining"


@dataclass(frozen=True)
class HealthReport:
    """One health probe: the state plus the reasons it is not READY."""

    state: HealthState
    reasons: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        """Whether the service is accepting new requests."""
        return self.state is not HealthState.DRAINING


@dataclass(frozen=True)
class ClipRequest:
    """One clip to classify.

    Exactly one of ``image`` (a square 0/1 occupancy raster, any side
    the service can down-sample to the model's input size) or ``clip``
    (layout geometry, rasterized server-side) must be given.
    """

    image: np.ndarray | None = None
    clip: Clip | None = None
    request_id: str = ""

    def __post_init__(self) -> None:
        if (self.image is None) == (self.clip is None):
            raise ValueError("provide exactly one of image= or clip=")
        if self.image is not None:
            arr = np.asarray(self.image)
            if arr.ndim == 3 and arr.shape[0] == 1:
                arr = arr[0]
            if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
                raise ValueError(
                    f"image must be a square 2-D raster, got {arr.shape}"
                )
            object.__setattr__(self, "image", arr)


@dataclass(frozen=True)
class Prediction:
    """Classification result for one clip."""

    request_id: str
    label: int  #: 1 = hotspot, 0 = clean
    score: float  #: hotspot logit minus non-hotspot logit
    model: str  #: registry name of the model that served the request
    backend: str  #: ``"packed"`` (XNOR/popcount) or ``"float"``
    latency_ms: float  #: service-side wall time, enqueue to response


@dataclass(frozen=True)
class ScanRequest:
    """Sweep a full layout with a sliding window and classify each stop.

    ``window`` is the clip side in nanometres (typically the training
    clip size) and ``stride`` the sweep step; the final row/column is
    snapped to the layout edge so coverage is complete.
    """

    layout: Clip
    window: int
    stride: int
    request_id: str = ""

    def __post_init__(self) -> None:
        if self.window <= 0 or self.window > self.layout.size:
            raise ValueError(
                f"window {self.window} outside (0, {self.layout.size}]"
            )
        if self.stride <= 0:
            raise ValueError(f"stride must be positive, got {self.stride}")


@dataclass(frozen=True)
class ChipScanRequest:
    """Stream-scan a full chip under a bounded tile-plane memory budget.

    Unlike :class:`ScanRequest`, the layout is never rasterized as one
    plane: the sweep is served tile by tile through
    :class:`repro.chip.ChipScanner`, so ``layout`` may be arbitrarily
    large.  ``tile_budget`` caps the float64 raster bytes of any tile
    (0 picks the scanner default).  ``token``, when set, names this
    layout state in the service's region-keyed plane cache so follow-up
    ECO re-scans under the same token reuse clean tile planes.

    Setting ``journal`` routes the request through the **durable** scan
    path (:class:`repro.chip.DurableChipScan`): completed tiles are
    checksummed to the journal file as the scan progresses, so a killed
    scan re-run with ``resume=True`` replays them and re-scores only
    the pending tiles — bit-identical to an uninterrupted run.
    ``max_retries`` caps the per-tile transient-retry attempts of the
    durable retry policy (``None`` keeps the policy default).
    """

    layout: Clip
    window: int
    stride: int
    tile_budget: int = 0
    token: str = ""
    request_id: str = ""
    journal: str = ""
    resume: bool = False
    max_retries: int | None = None

    def __post_init__(self) -> None:
        if self.window <= 0 or self.window > self.layout.size:
            raise ValueError(
                f"window {self.window} outside (0, {self.layout.size}]"
            )
        if self.stride <= 0:
            raise ValueError(f"stride must be positive, got {self.stride}")
        if self.tile_budget < 0:
            raise ValueError(
                f"tile_budget must be >= 0, got {self.tile_budget}"
            )
        if self.resume and not self.journal:
            raise ValueError("resume=True needs a journal= path to resume")
        if self.max_retries is not None and self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )


@dataclass(frozen=True)
class ChipScanReport:
    """Result of a chip scan (or an incremental re-scan).

    ``heatmap`` is the full per-origin score grid
    (:class:`repro.chip.HotspotHeatmap`); ``hits()`` and ``summary()``
    live there.  Like :class:`ScanReport`, a report can be
    **degraded**: tiles whose shard kept failing after retry are left
    ``NaN`` in the heatmap and enumerated in ``failed_tiles`` (indices
    into the scan's tile grid) — healthy tiles' scores are returned
    unchanged.  ``rescored_windows`` is ``None`` for a full scan and
    the dirty-window count for an ECO re-scan.

    Durable scans add: ``quarantined_windows`` — origin-grid ``(i, j)``
    indices the retry policy's bisection isolated as poison (NaN in the
    heatmap, everything around them scored normally; these degrade the
    report exactly like failed tiles); ``tiles_replayed`` — tiles
    served from the resume journal instead of re-scored;
    ``tile_retries`` — transient re-attempts spent; ``resumed`` —
    whether the scan continued a journal.

    The report carries the scanner's compiled state (``result``) so the
    service can serve :meth:`~repro.serve.service.HotspotService.\
rescan_chip` against it without re-planning; treat it as opaque.
    """

    request_id: str
    windows_scanned: int
    tiles_total: int
    peak_tile_bytes: int
    heatmap: object  #: :class:`repro.chip.HotspotHeatmap`
    result: object = field(repr=False, default=None)
    model: str = ""
    backend: str = ""
    #: pass-pipeline signature the scanning engine was compiled under;
    #: journal headers bind to it so resumes cannot mix artifacts
    #: produced by different compilation pipelines
    pipeline: str = ""
    latency_ms: float = 0.0
    degraded: bool = False
    failed_tiles: tuple[int, ...] = ()
    rescored_windows: int | None = None
    quarantined_windows: tuple[tuple[int, int], ...] = ()
    tiles_replayed: int = 0
    tile_retries: int = 0
    resumed: bool = False

    def __post_init__(self) -> None:
        if self.degraded != bool(
            self.failed_tiles or self.quarantined_windows
        ):
            raise ValueError(
                "degraded must be True exactly when failed_tiles or "
                "quarantined_windows is non-empty "
                f"(degraded={self.degraded}, "
                f"failed_tiles={self.failed_tiles}, "
                f"quarantined_windows={self.quarantined_windows})"
            )

    @property
    def windows_failed(self) -> int:
        """Windows never scored (NaN heatmap entries)."""
        return self.heatmap.n_unscored

    def hits(self, bias: float = 0.0):
        """Hotspot windows above ``bias`` (see ``HotspotHeatmap.hits``)."""
        return self.heatmap.hits(bias)


@dataclass(frozen=True)
class ScanHit:
    """One window flagged as a hotspot (layout coordinates, nm)."""

    x0: int
    y0: int
    x1: int
    y1: int
    score: float


@dataclass(frozen=True)
class ScanReport:
    """Result of a scan request.

    A report can be **degraded**: when a scan shard keeps failing after
    retry (or misses the scan deadline), the service returns the healthy
    shards' hits instead of discarding the sweep, sets ``degraded``,
    and enumerates the un-scored windows in ``failed_ranges`` — each a
    ``(start, stop)`` half-open range of window indices in the sweep's
    row-major origin order.  ``windows_scanned`` always counts the full
    sweep; subtract ``windows_failed`` for the number actually scored.
    """

    request_id: str
    windows_scanned: int
    hits: tuple[ScanHit, ...] = field(default_factory=tuple)
    model: str = ""
    backend: str = ""
    latency_ms: float = 0.0
    degraded: bool = False
    failed_ranges: tuple[tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        if self.degraded != bool(self.failed_ranges):
            raise ValueError(
                "degraded must be True exactly when failed_ranges is "
                f"non-empty (degraded={self.degraded}, "
                f"failed_ranges={self.failed_ranges})"
            )

    @property
    def windows_failed(self) -> int:
        """Windows whose shard failed (0 for a healthy report)."""
        return sum(stop - start for start, stop in self.failed_ranges)

    @property
    def hotspot_rate(self) -> float:
        """Fraction of *scored* windows flagged as hotspots."""
        scored = self.windows_scanned - self.windows_failed
        if scored == 0:
            return 0.0
        return len(self.hits) / scored
