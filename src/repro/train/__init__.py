"""Crash-safe training runs: checkpoint/resume, rollback, preemption.

The training-side counterpart of ``repro.serve``'s fault tolerance:
:class:`TrainingRun` executes a multi-phase schedule (Algorithm 1's
main MGD epochs + the biased fine-tune phase) with atomic run-state
checkpoints, bit-identical resume after a kill at any batch step, a
divergence sentinel with bounded rollback-and-retry, and graceful
SIGINT/SIGTERM preemption.  See ``docs/training.md``.
"""

from .checkpoint import (
    CheckpointInfo,
    CheckpointManager,
    load_run_state,
    save_run_state,
)
from .errors import DivergenceError, PreemptedError, TrainingRunError
from .run import TrainingPhase, TrainingRun

__all__ = [
    "CheckpointInfo",
    "CheckpointManager",
    "DivergenceError",
    "PreemptedError",
    "TrainingPhase",
    "TrainingRun",
    "TrainingRunError",
    "load_run_state",
    "save_run_state",
]
