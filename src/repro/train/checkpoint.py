"""Atomic, integrity-checked run-state checkpoints with retention.

A *run-state* checkpoint is a single flat ``.npz`` archive bundling
everything a training run needs to continue bit-identically: model
master weights, optimizer moments, scheduler state, DataLoader RNG
states, epoch/phase position and the :class:`~repro.nn.trainer.History`
so far (the key layout is produced by
:meth:`repro.train.TrainingRun._capture_state`).

Two guarantees matter here:

**Atomicity** — :func:`save_run_state` writes to a temporary file in the
same directory, flushes and fsyncs it, then ``os.replace``-renames it
over the final name (and fsyncs the directory so the rename itself is
durable).  A crash mid-write therefore leaves either the previous
checkpoint or a stray ``*.tmp-*`` file — never a half-written archive
under the real name.

**Integrity** — every archive carries a SHA-256 over its full contents
(the same :func:`~repro.nn.serialization.state_checksum` scheme model
checkpoints use), re-verified on load.  A truncated or bit-rotted file
raises :class:`~repro.nn.serialization.CheckpointError` instead of
resuming from garbage.

:class:`CheckpointManager` layers a retention policy on top: keep the
last ``keep`` checkpoints plus the one with the best validation loss.
"""

from __future__ import annotations

import os
import re
import zipfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..nn.serialization import CheckpointError, state_checksum

__all__ = [
    "CheckpointInfo",
    "CheckpointManager",
    "load_run_state",
    "save_run_state",
]

#: Key holding the content checksum inside a run-state archive.
_RUN_CHECKSUM_KEY = "__run__.content_sha256"

#: Run-state file name pattern: ``state-<global_step>.npz``.
_STATE_NAME = re.compile(r"^state-(\d+)\.npz$")


def save_run_state(path: str | os.PathLike, state: dict[str, np.ndarray]) -> Path:
    """Atomically write a run-state archive (temp + fsync + rename).

    Adds the content checksum; the input dict is not modified.  Returns
    the path written.
    """
    path = Path(path)
    record = {key: np.asarray(value) for key, value in state.items()}
    if _RUN_CHECKSUM_KEY in record:
        raise ValueError(f"state must not contain the reserved key "
                         f"{_RUN_CHECKSUM_KEY!r}")
    record[_RUN_CHECKSUM_KEY] = np.asarray(state_checksum(record))
    tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    try:
        with open(tmp, "wb") as handle:
            np.savez(handle, **record)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    _fsync_directory(path.parent)
    return path


def _fsync_directory(directory: Path) -> None:
    """Make a rename durable; a no-op where directory fds are unsupported."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def load_run_state(path: str | os.PathLike) -> dict[str, np.ndarray]:
    """Read a run-state archive, verifying its content checksum.

    Raises :class:`~repro.nn.serialization.CheckpointError` on a
    missing checksum, a checksum mismatch, or any form of truncation /
    corruption the zip layer surfaces.
    """
    path = Path(path)
    try:
        with np.load(path) as archive:
            arrays = {key: archive[key] for key in archive.files}
    except FileNotFoundError:
        raise
    except (zipfile.BadZipFile, OSError, ValueError, EOFError, KeyError) as exc:
        raise CheckpointError(
            f"corrupt or truncated run state {path}: "
            f"{type(exc).__name__}: {exc}"
        ) from exc
    recorded = arrays.pop(_RUN_CHECKSUM_KEY, None)
    if recorded is None:
        raise CheckpointError(
            f"run state {path} records no content checksum; refusing to "
            "resume from an unverifiable file"
        )
    expected = str(recorded.item() if recorded.ndim == 0 else recorded)
    actual = state_checksum(arrays)
    if actual != expected:
        raise CheckpointError(
            f"run state {path} failed its content checksum "
            f"(recorded {expected[:12]}…, computed {actual[:12]}…); "
            "the file is corrupt or was modified after writing"
        )
    return arrays


@dataclass(frozen=True)
class CheckpointInfo:
    """Index entry for one on-disk run-state checkpoint."""

    path: Path
    step: int  #: global batch step the state was captured at
    val_loss: float  #: last validation loss at capture (nan when none)


class CheckpointManager:
    """Directory of run-state checkpoints with a keep-N + best policy.

    Parameters
    ----------
    directory:
        Created on first save if missing.
    keep:
        Number of most-recent checkpoints retained.  The checkpoint
        with the lowest recorded validation loss is *always* retained
        in addition (the divergence sentinel and post-hoc model
        selection both want it), so up to ``keep + 1`` files persist.
    """

    def __init__(self, directory: str | os.PathLike, keep: int = 3):
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.directory = Path(directory)
        self.keep = keep

    def path_for(self, step: int) -> Path:
        """Canonical file name of the checkpoint at ``step``."""
        return self.directory / f"state-{step:09d}.npz"

    def checkpoints(self) -> list[CheckpointInfo]:
        """On-disk checkpoints sorted by ascending step.

        ``val_loss`` is read lazily from each archive; a file whose
        archive cannot be opened still appears (with ``nan`` loss) so
        that :meth:`latest` points at it and the subsequent verified
        load fails loudly rather than silently skipping it.
        """
        if not self.directory.is_dir():
            return []
        entries = []
        for path in self.directory.iterdir():
            match = _STATE_NAME.match(path.name)
            if not match:
                continue
            entries.append(CheckpointInfo(
                path=path,
                step=int(match.group(1)),
                val_loss=self._peek_val_loss(path),
            ))
        return sorted(entries, key=lambda info: info.step)

    @staticmethod
    def _peek_val_loss(path: Path) -> float:
        try:
            with np.load(path) as archive:
                return float(archive["run.val_loss"])
        except Exception:
            return float("nan")

    def latest(self) -> CheckpointInfo | None:
        """Most recent checkpoint on disk, or ``None``."""
        entries = self.checkpoints()
        return entries[-1] if entries else None

    def best(self) -> CheckpointInfo | None:
        """Checkpoint with the lowest recorded validation loss, or None."""
        scored = [c for c in self.checkpoints() if np.isfinite(c.val_loss)]
        return min(scored, key=lambda info: info.val_loss) if scored else None

    def save(self, step: int, state: dict[str, np.ndarray]) -> Path:
        """Atomically persist ``state`` at ``step`` and apply retention."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = save_run_state(self.path_for(step), state)
        self.prune()
        return path

    def load_latest(self) -> dict[str, np.ndarray] | None:
        """Verified contents of the newest checkpoint (None when empty).

        A corrupt newest checkpoint raises
        :class:`~repro.nn.serialization.CheckpointError` — resuming
        silently from an older state than the caller expects would be
        worse than failing.
        """
        info = self.latest()
        if info is None:
            return None
        return load_run_state(info.path)

    def prune(self) -> list[Path]:
        """Delete checkpoints outside the retention set; returns them."""
        entries = self.checkpoints()
        retained = {info.path for info in entries[-self.keep:]}
        best = self.best()
        if best is not None:
            retained.add(best.path)
        removed = []
        for info in entries:
            if info.path not in retained:
                info.path.unlink(missing_ok=True)
                removed.append(info.path)
        return removed
