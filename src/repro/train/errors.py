"""Typed errors of the crash-safe training orchestrator.

Mirrors the serving layer's philosophy (``repro.serve.errors``): every
failure mode a caller might handle differently gets its own type, and
each error message carries enough context to act on — the checkpoint to
resume from, the number of rollbacks attempted, the step that was
interrupted.

Corrupt or truncated run-state files raise the *same*
:class:`~repro.nn.serialization.CheckpointError` the model-checkpoint
loader uses, so one ``except`` clause covers integrity failures of both
formats.
"""

from __future__ import annotations

from pathlib import Path

__all__ = ["TrainingRunError", "DivergenceError", "PreemptedError"]


class TrainingRunError(RuntimeError):
    """Base class for orchestrator failures."""


class DivergenceError(TrainingRunError):
    """Training kept diverging after the allowed number of rollbacks.

    Raised by :class:`repro.train.TrainingRun` once rollback + learning-
    rate cuts have been retried ``max_retries`` times without completing
    an epoch.  The underlying :class:`FloatingPointError` (non-finite
    loss or exploding gradient) is chained as ``__cause__``.
    """

    def __init__(self, message: str, retries: int):
        super().__init__(message)
        self.retries = retries


class PreemptedError(TrainingRunError):
    """The run was preempted (SIGINT/SIGTERM or an explicit request).

    The in-flight batch was finished and a resumable checkpoint was
    written before raising; ``checkpoint`` names it (``None`` when the
    run has no checkpoint directory, in which case the run is lost — the
    error message says so).
    """

    def __init__(self, message: str, checkpoint: Path | None):
        super().__init__(message)
        self.checkpoint = checkpoint
