"""Resume-parity chaos harness: the correctness gate for crash safety.

The guarantee under test: a training run killed at *any* batch step and
resumed from its latest run-state checkpoint produces **bit-identical**
final weights to a never-interrupted run with the same seeds — across
both the main MGD phase and the biased fine-tune phase of the BNN
detector.  "Close" is not good enough; the repo's determinism bar (see
``repro.engine.parity``) extends to resume.

Use :func:`resume_parity` programmatically (the pytest chaos suite
does), or run as a module for the CI quick gate::

    PYTHONPATH=src python -m repro.train.parity --epochs 2 --kills 3

which trains a small detector straight through, then for several
randomly chosen kill steps — always including one inside the fine-tune
phase — kills, resumes, compares weights, and finally checks that a
checkpoint truncated mid-write is refused with a typed error.  Exits
non-zero on any mismatch.
"""

from __future__ import annotations

import argparse
import tempfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..detect.bnn_detector import BNNDetector
from ..nn.data import ArrayDataset
from ..nn.serialization import CheckpointError, state_checksum
from .checkpoint import CheckpointManager, load_run_state

__all__ = [
    "KillResult",
    "KilledRun",
    "ParityReport",
    "make_detector",
    "planted_dataset",
    "resume_parity",
    "truncation_refused",
    "main",
]


class KilledRun(RuntimeError):
    """Simulated hard crash injected by the chaos step hook."""


def planted_dataset(
    n_per_class: int, size: int, rng: np.random.Generator
) -> ArrayDataset:
    """Small planted-signal set (speckle vs. filled block), learnable fast."""
    images = np.zeros((2 * n_per_class, 1, size, size), dtype=np.float32)
    labels = np.zeros(2 * n_per_class, dtype=np.int64)
    for i in range(n_per_class):
        images[i, 0] = rng.random((size, size)) < 0.08
    block = size // 2
    for i in range(n_per_class, 2 * n_per_class):
        y = int(rng.integers(0, size - block + 1))
        x = int(rng.integers(0, size - block + 1))
        images[i, 0, y : y + block, x : x + block] = 1.0
        labels[i] = 1
    order = rng.permutation(2 * n_per_class)
    return ArrayDataset(images[order], labels[order])


def make_detector(
    base_width: int = 4,
    epochs: int = 2,
    finetune_epochs: int = 1,
    batch_size: int = 16,
    seed: int = 0,
    **kwargs,
) -> BNNDetector:
    """A small, fast, deterministic detector configuration."""
    return BNNDetector(
        channels=(base_width, 2 * base_width),
        epochs=epochs,
        finetune_epochs=finetune_epochs,
        batch_size=batch_size,
        stem_stride=1,
        packed=False,
        seed=seed,
        **kwargs,
    )


@dataclass(frozen=True)
class KillResult:
    """Outcome of one kill-and-resume round."""

    kill_step: int
    phase: str  #: phase the kill landed in ("main" / "finetune")
    identical: bool  #: resumed final weights byte-identical to reference


@dataclass
class ParityReport:
    """All chaos rounds plus the mid-write-truncation check."""

    total_steps: int
    kills: list[KillResult]
    truncation_refused: bool

    @property
    def ok(self) -> bool:
        return self.truncation_refused and all(k.identical for k in self.kills)


def _fit_reference(dataset, fit_seed, **detector_kwargs):
    """Straight-through run: final weights + the total step count."""
    steps = []
    detector = make_detector(**detector_kwargs, step_hook=steps.append)
    detector.fit(dataset, np.random.default_rng(fit_seed))
    return detector.model.state_dict(), len(steps)


def _fit_killed_then_resumed(dataset, fit_seed, kill_step, checkpoint_dir,
                             **detector_kwargs):
    """Kill at ``kill_step`` via a raising hook, then resume to the end."""

    def bomb(step: int) -> None:
        if step == kill_step:
            raise KilledRun(f"simulated crash at step {step}")

    victim = make_detector(**detector_kwargs, checkpoint_dir=checkpoint_dir,
                           step_hook=bomb)
    try:
        victim.fit(dataset, np.random.default_rng(fit_seed))
        raise AssertionError(
            f"kill step {kill_step} never fired (run too short?)"
        )
    except KilledRun:
        pass
    survivor = make_detector(**detector_kwargs, checkpoint_dir=checkpoint_dir,
                             resume=True)
    survivor.fit(dataset, np.random.default_rng(fit_seed))
    return survivor.model.state_dict()


def resume_parity(
    kills: int = 3,
    epochs: int = 2,
    finetune_epochs: int = 1,
    image_size: int = 16,
    base_width: int = 4,
    batch_size: int = 16,
    n_per_class: int = 15,
    data_seed: int = 0,
    fit_seed: int = 1,
    chaos_seed: int = 7,
    work_dir: str | None = None,
    verbose: bool = False,
) -> ParityReport:
    """Run the full chaos gate; see the module docstring."""
    if kills < 1:
        raise ValueError(f"kills must be >= 1, got {kills}")
    dataset = planted_dataset(n_per_class, image_size,
                              np.random.default_rng(data_seed))
    detector_kwargs = dict(base_width=base_width, epochs=epochs,
                           finetune_epochs=finetune_epochs,
                           batch_size=batch_size)
    reference, total_steps = _fit_reference(dataset, fit_seed,
                                            **detector_kwargs)
    reference_digest = state_checksum(reference)
    # phase boundary in global steps: phases run back to back, so the
    # fine-tune phase owns the last finetune/(epochs+finetune) fraction
    steps_per_epoch = total_steps // (epochs + finetune_epochs)
    main_steps = steps_per_epoch * epochs
    chaos = np.random.default_rng(chaos_seed)
    kill_steps = set()
    if finetune_epochs > 0:  # always cover the biased fine-tune phase
        kill_steps.add(int(chaos.integers(main_steps + 1, total_steps + 1)))
    while len(kill_steps) < min(kills, total_steps):
        kill_steps.add(int(chaos.integers(1, total_steps + 1)))

    base = Path(work_dir) if work_dir is not None else None
    results = []
    for kill_step in sorted(kill_steps):
        if base is not None:
            checkpoint_dir = base / f"kill-{kill_step:04d}"
        else:
            checkpoint_dir = Path(tempfile.mkdtemp(prefix="repro-chaos-"))
        resumed = _fit_killed_then_resumed(
            dataset, fit_seed, kill_step, checkpoint_dir, **detector_kwargs
        )
        identical = state_checksum(resumed) == reference_digest
        phase = "finetune" if kill_step > main_steps else "main"
        results.append(KillResult(kill_step, phase, identical))
        if verbose:
            verdict = "bit-identical" if identical else "MISMATCH"
            print(f"kill at step {kill_step:4d} ({phase:8s}): resume "
                  f"{verdict}")
        last_dir = checkpoint_dir
    refused = truncation_refused(last_dir)
    if verbose:
        print(f"truncated checkpoint refused with typed error: {refused}")
    return ParityReport(total_steps=total_steps, kills=results,
                        truncation_refused=refused)


def truncation_refused(checkpoint_dir: str | Path) -> bool:
    """Truncate the latest run state mid-file; expect a typed refusal."""
    manager = CheckpointManager(checkpoint_dir)
    info = manager.latest()
    if info is None:
        raise AssertionError(f"no checkpoints under {checkpoint_dir}")
    data = info.path.read_bytes()
    info.path.write_bytes(data[: max(1, len(data) // 2)])
    try:
        load_run_state(info.path)
    except CheckpointError:
        return True
    except Exception:
        return False  # wrong (untyped) error
    return False  # silently loaded garbage


def main(argv: list[str] | None = None) -> int:
    """CLI entry point for the CI resume-parity quick gate."""
    parser = argparse.ArgumentParser(
        description="kill-at-any-step resume-parity chaos gate"
    )
    parser.add_argument("--kills", type=int, default=3,
                        help="number of random kill points (default 3; one "
                             "is always inside the fine-tune phase)")
    parser.add_argument("--epochs", type=int, default=2)
    parser.add_argument("--finetune-epochs", type=int, default=1)
    parser.add_argument("--image-size", type=int, default=16)
    parser.add_argument("--base-width", type=int, default=4)
    parser.add_argument("--batch-size", type=int, default=16)
    parser.add_argument("--chaos-seed", type=int, default=7)
    args = parser.parse_args(argv)
    report = resume_parity(
        kills=args.kills, epochs=args.epochs,
        finetune_epochs=args.finetune_epochs, image_size=args.image_size,
        base_width=args.base_width, batch_size=args.batch_size,
        chaos_seed=args.chaos_seed, verbose=True,
    )
    print(f"{len(report.kills)} kill points over {report.total_steps} steps: "
          f"{'all bit-identical' if all(k.identical for k in report.kills) else 'MISMATCHES'}")
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
