"""Crash-safe training orchestration (Algorithm 1, made killable).

:class:`TrainingRun` wraps the per-phase :class:`~repro.nn.trainer.
Trainer` loop — the paper's main MGD phase plus the DAC'17-style biased
fine-tune phase — with the fault tolerance the serving layer already
has:

* **Atomic checkpointing** of the *full* run state every epoch (and,
  optionally, every N steps): model master weights, optimizer moments,
  scheduler state, the RNG states of every phase's DataLoader and
  augmenter, the epoch/phase position, partial-epoch accumulators, and
  the :class:`~repro.nn.trainer.History` so far.
* **Bit-identical resume**: a run killed at *any* batch step and
  resumed from its latest checkpoint produces exactly the same final
  weights as a never-interrupted run.  The trick is that a checkpoint
  stores the RNG states as of the *start* of the in-flight epoch plus
  the number of completed batches; resume replays the epoch's batch
  stream (consuming the loader and augmentation RNGs identically),
  skips the already-trained prefix, and continues.
* **Divergence sentinel**: a non-finite loss or an exploding gradient
  norm (see ``Trainer.max_grad_norm``) rolls the run back to the last
  good state, cuts the learning rate, and retries — bounded by
  ``max_retries`` — instead of crashing.  Every rollback is recorded in
  ``History.events``.
* **Graceful preemption**: SIGINT/SIGTERM (or an explicit
  :meth:`TrainingRun.request_preemption`) finishes the in-flight batch,
  writes a resumable checkpoint, and raises
  :class:`~repro.train.errors.PreemptedError`.
"""

from __future__ import annotations

import json
import signal
import threading
from dataclasses import dataclass

import numpy as np

from ..nn.data import DataLoader
from ..nn.module import Module
from ..nn.trainer import History, Trainer, evaluate_loss
from .checkpoint import CheckpointManager
from .errors import DivergenceError, PreemptedError

__all__ = ["TrainingPhase", "TrainingRun"]


@dataclass
class TrainingPhase:
    """One phase of a (possibly multi-phase) training schedule.

    The BNN detector uses two: ``"main"`` (Algorithm 1's MGD epochs)
    and ``"finetune"`` (the biased-learning epochs of Section 3.4.3).
    The trainer carries the phase's optimizer, scheduler and loss; the
    loaders carry the phase's sampling and augmentation RNGs.
    """

    name: str
    epochs: int
    trainer: Trainer
    train_loader: DataLoader
    val_loader: DataLoader | None = None

    def __post_init__(self):
        if self.epochs < 1:
            raise ValueError(
                f"phase {self.name!r} must have epochs >= 1, got {self.epochs}"
            )


class TrainingRun:
    """Orchestrates a phase schedule with checkpoint/resume/rollback.

    Parameters
    ----------
    model:
        The shared model every phase's trainer updates.
    phases:
        Executed in order.  Phase names must be unique (checkpoints
        record the schedule and refuse to resume a different one).
    checkpoint_dir:
        Run-state directory; ``None`` disables persistence (divergence
        rollback still works from an in-memory snapshot, but a killed
        run is not resumable).
    keep:
        Retention: keep the last ``keep`` checkpoints + the best-val one.
    checkpoint_every:
        Epoch cadence of boundary checkpoints (1 = every epoch).
    checkpoint_every_steps:
        Optional additional step cadence for mid-epoch checkpoints.
    max_retries:
        Divergence rollbacks allowed without completing an epoch before
        :class:`~repro.train.errors.DivergenceError` is raised.
    lr_cut:
        Learning-rate multiplier applied after each rollback.
    step_hook:
        Optional callable invoked with the global step after every
        trained batch — the chaos-testing seam (a hook that raises
        simulates a hard crash at that exact step).
    handle_signals:
        Install SIGINT/SIGTERM handlers for the duration of
        :meth:`run` that convert the signal into graceful preemption.
        Ignored when not on the main thread.
    """

    def __init__(
        self,
        model: Module,
        phases: list[TrainingPhase],
        checkpoint_dir=None,
        keep: int = 3,
        checkpoint_every: int = 1,
        checkpoint_every_steps: int | None = None,
        max_retries: int = 3,
        lr_cut: float = 0.5,
        step_hook=None,
        handle_signals: bool = False,
        verbose: bool = False,
    ):
        if not phases:
            raise ValueError("at least one training phase is required")
        names = [phase.name for phase in phases]
        if len(set(names)) != len(names):
            raise ValueError(f"phase names must be unique, got {names}")
        for phase in phases:
            if phase.trainer.model is not model:
                raise ValueError(
                    f"phase {phase.name!r} trains a different model object"
                )
        if checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        if checkpoint_every_steps is not None and checkpoint_every_steps < 1:
            raise ValueError(
                "checkpoint_every_steps must be >= 1, got "
                f"{checkpoint_every_steps}"
            )
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if not 0.0 < lr_cut < 1.0:
            raise ValueError(f"lr_cut must be in (0, 1), got {lr_cut}")
        self.model = model
        self.phases = list(phases)
        self.manager = (
            CheckpointManager(checkpoint_dir, keep=keep)
            if checkpoint_dir is not None
            else None
        )
        self.checkpoint_every = checkpoint_every
        self.checkpoint_every_steps = checkpoint_every_steps
        self.max_retries = max_retries
        self.lr_cut = lr_cut
        self.step_hook = step_hook
        self.handle_signals = handle_signals
        self.verbose = verbose
        self.history = History()
        # position: the next (phase, epoch, batch) to execute
        self._phase_index = 0
        self._epoch_in_phase = 0
        self._batch_index = 0
        self._epoch_loss = 0.0
        self._seen = 0
        self._global_step = 0
        self._last_val_loss = float("nan")
        self._retries = 0
        self._preempted = False
        self._preempt_reason = "preemption requested"
        self._last_good: dict[str, np.ndarray] | None = None
        self._epoch_start_loaders: dict[int, dict[str, str]] | None = None

    # -- public API ------------------------------------------------------

    def request_preemption(self, reason: str = "preemption requested") -> None:
        """Ask the run to stop after the in-flight batch (thread-safe)."""
        self._preempt_reason = reason
        self._preempted = True

    def run(self, resume: bool = False) -> History:
        """Execute the schedule; returns the (possibly restored) History.

        With ``resume=True`` and a checkpoint directory holding state,
        continues bit-identically from the latest checkpoint; with an
        empty directory it starts fresh.  A corrupt latest checkpoint
        raises :class:`~repro.nn.serialization.CheckpointError` rather
        than being loaded or skipped.
        """
        if resume and self.manager is None:
            raise ValueError("resume=True requires a checkpoint_dir")
        if not resume and self.manager is not None:
            existing = self.manager.checkpoints()
            if existing:
                raise ValueError(
                    f"checkpoint directory {self.manager.directory} already "
                    f"holds {len(existing)} run-state checkpoint(s); pass "
                    "resume=True to continue that run or point at an empty "
                    "directory to start fresh"
                )
        restored = None
        if resume:
            restored = self.manager.load_latest()
        if restored is not None:
            self._apply_state(restored)
            self._last_good = restored
            self.history.events.append({
                "kind": "resume",
                "step": self._global_step,
                "phase": self._current_phase_name(),
            })
        else:
            self._last_good = self._capture_state()
            if self.manager is not None:
                self.manager.save(self._global_step, self._last_good)
        old_handlers = self._install_signal_handlers()
        try:
            self._loop()
        finally:
            self._restore_signal_handlers(old_handlers)
        return self.history

    # -- main loop -------------------------------------------------------

    def _loop(self) -> None:
        epochs_since_checkpoint = 0
        while self._phase_index < len(self.phases):
            phase = self.phases[self._phase_index]
            if self._epoch_in_phase >= phase.epochs:
                self._phase_index += 1
                self._epoch_in_phase = 0
                continue
            try:
                self._train_one_epoch(phase)
            except PreemptedError:
                raise
            except FloatingPointError as exc:
                self._rollback(exc)
                continue
            # epoch completed: advance the position (possibly across a
            # phase boundary) before capturing state, so a checkpoint
            # always records the *next* work to execute
            self._epoch_in_phase += 1
            if self._epoch_in_phase >= phase.epochs:
                self._phase_index += 1
                self._epoch_in_phase = 0
            self._retries = 0
            epochs_since_checkpoint += 1
            done = self._phase_index >= len(self.phases)
            saved = None
            self._last_good = self._capture_state()
            if self.manager is not None and (
                done
                or self._preempted
                or epochs_since_checkpoint >= self.checkpoint_every
            ):
                saved = self.manager.save(self._global_step, self._last_good)
                epochs_since_checkpoint = 0
            if self._preempted:
                raise self._preemption_error(saved)

    def _train_one_epoch(self, phase: TrainingPhase) -> None:
        trainer = phase.trainer
        start_batch = self._batch_index
        epoch_loss, seen = self._epoch_loss, self._seen
        # RNG states as of the epoch start: what a mid-epoch checkpoint
        # must record so resume can replay this epoch's batch stream
        self._epoch_start_loaders = {
            i: ph.train_loader.state_dict() for i, ph in enumerate(self.phases)
        }
        batch_index = 0
        for images, labels in phase.train_loader:
            if batch_index < start_batch:
                # resume replay: iterating the loader consumed the
                # sampling and augmentation RNGs exactly as the original
                # epoch did; the batch itself was already trained on
                batch_index += 1
                continue
            loss = trainer.train_batch(images, labels)
            batch_index += 1
            epoch_loss += loss * images.shape[0]
            seen += images.shape[0]
            self._global_step += 1
            self._batch_index = batch_index
            self._epoch_loss, self._seen = epoch_loss, seen
            if self.step_hook is not None:
                self.step_hook(self._global_step)
            if self._preempted:
                saved = None
                if self.manager is not None:
                    saved = self.manager.save(
                        self._global_step, self._capture_state(mid_epoch=True)
                    )
                raise self._preemption_error(saved)
            if (
                self.checkpoint_every_steps is not None
                and self.manager is not None
                and self._global_step % self.checkpoint_every_steps == 0
            ):
                self.manager.save(
                    self._global_step, self._capture_state(mid_epoch=True)
                )
        if seen == 0:
            raise ValueError(
                f"phase {phase.name!r} train loader produced no batches"
            )
        train_loss = epoch_loss / seen
        self._batch_index = 0
        self._epoch_loss, self._seen = 0.0, 0
        self.history.train_loss.append(train_loss)
        self.history.lr.append(trainer.optimizer.lr)
        val_loss = None
        if phase.val_loader is not None:
            val_loss = evaluate_loss(self.model, phase.val_loader,
                                     trainer.loss_fn)
            self.history.val_loss.append(val_loss)
            self._last_val_loss = val_loss
        if trainer.scheduler is not None:
            trainer.scheduler.step(val_loss)
        if self.verbose:
            msg = (f"[{phase.name}] epoch "
                   f"{self._epoch_in_phase + 1}/{phase.epochs} "
                   f"train_loss={train_loss:.4f}")
            if val_loss is not None:
                msg += f" val_loss={val_loss:.4f}"
            msg += f" lr={trainer.optimizer.lr:.4g}"
            print(msg)

    def _rollback(self, exc: FloatingPointError) -> None:
        """Restore the last good state, cut the lr, record the event."""
        self._retries += 1
        if self._retries > self.max_retries:
            raise DivergenceError(
                f"training diverged {self._retries} times without "
                f"completing an epoch (last: {exc}); giving up after "
                f"{self.max_retries} rollbacks",
                retries=self._retries - 1,
            ) from exc
        failed_step = self._global_step
        failed_phase = self._current_phase_name()
        self._apply_state(self._last_good)
        optimizer = self.phases[self._phase_index].trainer.optimizer
        optimizer.lr *= self.lr_cut
        self.history.events.append({
            "kind": "divergence_rollback",
            "step": failed_step,
            "phase": failed_phase,
            "retry": self._retries,
            "error": str(exc),
            "lr": optimizer.lr,
        })
        if self.verbose:
            print(f"[{failed_phase}] divergence at step {failed_step} "
                  f"({exc}); rolled back, lr cut to {optimizer.lr:.4g} "
                  f"(retry {self._retries}/{self.max_retries})")

    # -- state capture / restore ----------------------------------------

    def _current_phase_name(self) -> str:
        if self._phase_index < len(self.phases):
            return self.phases[self._phase_index].name
        return "<complete>"

    def _schedule_fingerprint(self) -> str:
        return json.dumps([[ph.name, ph.epochs] for ph in self.phases])

    def _capture_state(self, mid_epoch: bool = False) -> dict[str, np.ndarray]:
        """Flat run-state dict (the ``.npz`` layout, sans checksum).

        ``mid_epoch=True`` records the current phase's loader RNGs as of
        the epoch *start* (captured by :meth:`_train_one_epoch`), since
        resuming a partial epoch replays its batch stream from the top.
        """
        state: dict[str, np.ndarray] = {}
        for name, array in self.model.state_dict().items():
            state[f"model.{name}"] = array
        if self._phase_index < len(self.phases):
            trainer = self.phases[self._phase_index].trainer
            for key, value in trainer.optimizer.state_dict().items():
                state[f"optim.{key}"] = np.asarray(value)
            if trainer.scheduler is not None:
                for key, value in trainer.scheduler.state_dict().items():
                    state[f"sched.{key}"] = np.asarray(value)
        if mid_epoch:
            if self._epoch_start_loaders is None:
                raise RuntimeError("mid-epoch capture outside an epoch")
            loader_states = self._epoch_start_loaders
        else:
            loader_states = {
                i: ph.train_loader.state_dict()
                for i, ph in enumerate(self.phases)
            }
        for i, loader_state in loader_states.items():
            for key, value in loader_state.items():
                state[f"loader.p{i}.{key}"] = np.asarray(value)
        for i, phase in enumerate(self.phases):
            if phase.val_loader is not None:
                for key, value in phase.val_loader.state_dict().items():
                    state[f"valloader.p{i}.{key}"] = np.asarray(value)
        state["history.train_loss"] = np.asarray(self.history.train_loss,
                                                 dtype=np.float64)
        state["history.val_loss"] = np.asarray(self.history.val_loss,
                                               dtype=np.float64)
        state["history.lr"] = np.asarray(self.history.lr, dtype=np.float64)
        state["history.events"] = np.asarray(json.dumps(self.history.events))
        state["run.schedule"] = np.asarray(self._schedule_fingerprint())
        state["run.phase_index"] = np.int64(self._phase_index)
        state["run.epoch_in_phase"] = np.int64(self._epoch_in_phase)
        state["run.batch_index"] = np.int64(self._batch_index)
        state["run.epoch_loss"] = np.float64(self._epoch_loss)
        state["run.seen"] = np.int64(self._seen)
        state["run.global_step"] = np.int64(self._global_step)
        state["run.val_loss"] = np.float64(self._last_val_loss)
        state["run.complete"] = np.int64(self._phase_index >= len(self.phases))
        return state

    def _apply_state(self, state: dict[str, np.ndarray]) -> None:
        """Restore a captured state into the live objects."""
        recorded = str(np.asarray(state["run.schedule"]).item())
        if recorded != self._schedule_fingerprint():
            raise ValueError(
                "checkpoint was written by a different phase schedule "
                f"({recorded} vs {self._schedule_fingerprint()}); "
                "reconstruct the run with the same phases to resume"
            )
        self.model.load_state_dict(_sub_state(state, "model."))
        self._phase_index = int(state["run.phase_index"])
        self._epoch_in_phase = int(state["run.epoch_in_phase"])
        self._batch_index = int(state["run.batch_index"])
        self._epoch_loss = float(state["run.epoch_loss"])
        self._seen = int(state["run.seen"])
        self._global_step = int(state["run.global_step"])
        self._last_val_loss = float(state["run.val_loss"])
        if self._phase_index < len(self.phases):
            trainer = self.phases[self._phase_index].trainer
            trainer.optimizer.load_state_dict(_sub_state(state, "optim."))
            sched_state = _sub_state(state, "sched.")
            if trainer.scheduler is not None and sched_state:
                trainer.scheduler.load_state_dict(sched_state)
        for i, phase in enumerate(self.phases):
            loader_state = {
                key: str(np.asarray(value).item())
                for key, value in _sub_state(state, f"loader.p{i}.").items()
            }
            if loader_state:
                phase.train_loader.load_state_dict(loader_state)
            if phase.val_loader is not None:
                val_state = {
                    key: str(np.asarray(value).item())
                    for key, value in
                    _sub_state(state, f"valloader.p{i}.").items()
                }
                if val_state:
                    phase.val_loader.load_state_dict(val_state)
        self.history.train_loss[:] = [
            float(x) for x in np.asarray(state["history.train_loss"])
        ]
        self.history.val_loss[:] = [
            float(x) for x in np.asarray(state["history.val_loss"])
        ]
        self.history.lr[:] = [float(x) for x in np.asarray(state["history.lr"])]
        self.history.events[:] = json.loads(
            str(np.asarray(state["history.events"]).item())
        )

    # -- preemption ------------------------------------------------------

    def _preemption_error(self, saved) -> PreemptedError:
        if saved is not None:
            message = (f"{self._preempt_reason}; checkpointed at step "
                       f"{self._global_step} to {saved} — resume to continue")
        elif self.manager is None:
            message = (f"{self._preempt_reason}; no checkpoint_dir "
                       "configured, this run is not resumable")
        else:
            message = f"{self._preempt_reason} at step {self._global_step}"
        return PreemptedError(message, checkpoint=saved)

    def _install_signal_handlers(self):
        if not self.handle_signals:
            return []
        if threading.current_thread() is not threading.main_thread():
            return []
        installed = []
        for signum in (signal.SIGINT, signal.SIGTERM):
            def handler(sig, frame, _name=signal.Signals(signum).name):
                self.request_preemption(f"received {_name}")
            try:
                installed.append((signum, signal.signal(signum, handler)))
            except (ValueError, OSError):  # pragma: no cover - platform
                break
        return installed

    @staticmethod
    def _restore_signal_handlers(handlers) -> None:
        for signum, previous in handlers:
            signal.signal(signum, previous)


def _sub_state(
    state: dict[str, np.ndarray], prefix: str
) -> dict[str, np.ndarray]:
    """Entries under ``prefix``, with the prefix stripped."""
    return {
        key[len(prefix):]: value
        for key, value in state.items()
        if key.startswith(prefix)
    }
