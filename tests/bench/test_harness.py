"""Tests for the benchmark harness (caching, table formatting, timing)."""

import time

import numpy as np
import pytest

from repro.bench import (
    Stopwatch,
    format_table,
    load_benchmark,
    run_detectors,
    stopwatch,
)
from repro.detect import SPIE15Detector


class TestFormatTable:
    def test_columns_and_rows(self):
        rows = [
            {"Method": "A", "FA#": 1, "Accu (%)": 99.0},
            {"Method": "Blong", "FA#": 23, "Accu (%)": 7.5},
        ]
        text = format_table(rows, title="Table 3")
        lines = text.splitlines()
        assert lines[0] == "Table 3"
        assert "Method" in lines[1] and "FA#" in lines[1]
        assert "Blong" in lines[4]
        # aligned columns: every separator position consistent
        assert lines[1].index("|") == lines[3].index("|")

    def test_empty_rows(self):
        assert format_table([], title="t") == "t"
        assert format_table([]) == ""


class TestTiming:
    def test_stopwatch_accumulates(self):
        sw = Stopwatch().start()
        time.sleep(0.01)
        first = sw.stop()
        assert first > 0.0
        sw.start()
        sw.stop()
        assert sw.elapsed >= first

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_context_manager(self):
        with stopwatch() as sw:
            time.sleep(0.005)
        assert sw.elapsed >= 0.004


class TestLoadBenchmark:
    def test_generate_and_cache_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        fresh = load_benchmark(scale=0.0005, image_size=16, seed=3)
        assert (tmp_path / (
            "iccad2012_s0.0005_i16_r3_binary.npz"
        )).exists()
        cached = load_benchmark(scale=0.0005, image_size=16, seed=3)
        np.testing.assert_array_equal(fresh.train.images, cached.train.images)
        np.testing.assert_array_equal(fresh.test.labels, cached.test.labels)
        assert cached.stats == fresh.stats

    def test_cache_disabled(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        load_benchmark(scale=0.0005, image_size=16, seed=4, cache=False)
        assert not list(tmp_path.glob("*.npz"))

    def test_env_overrides(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.125")
        monkeypatch.setenv("REPRO_BENCH_IMAGE", "48")
        monkeypatch.setenv("REPRO_BENCH_EPOCHS", "3")
        from repro.bench import bench_epochs, bench_image_size, bench_scale

        assert bench_scale() == 0.125
        assert bench_image_size() == 48
        assert bench_epochs() == 3


class TestRunDetectors:
    def test_produces_table_rows(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        benchmark = load_benchmark(scale=0.001, image_size=16, seed=9)
        results = run_detectors(
            [SPIE15Detector(grid=4, n_estimators=5)], benchmark, seed=1
        )
        assert len(results) == 1
        row = results[0].row()
        assert set(row) == {"Method", "FA#", "Runtime (s)", "ODST (s)",
                            "Accu (%)"}
