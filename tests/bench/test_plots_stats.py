"""Tests for ASCII plotting and multi-seed statistics."""

import numpy as np
import pytest

from repro.bench.plots import ascii_roc, bar_chart
from repro.bench.stats import (
    SeedSummary,
    bootstrap_ci,
    run_over_seeds,
    summarize_values,
)


class TestBarChart:
    def test_scaling_and_labels(self):
        chart = bar_chart({"a": 10.0, "bb": 5.0}, width=10)
        lines = chart.splitlines()
        assert lines[0].startswith("a ")
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_title_and_unit(self):
        chart = bar_chart({"x": 1.0}, title="T", unit="s")
        assert chart.splitlines()[0] == "T"
        assert chart.endswith("1s")

    def test_zero_values_ok(self):
        chart = bar_chart({"x": 0.0, "y": 0.0})
        assert "x" in chart

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            bar_chart({"x": -1.0})

    def test_empty(self):
        assert bar_chart({}, title="t") == "t"


class TestAsciiRoc:
    def test_perfect_curve_reaches_top_left(self):
        fa = np.array([0.0, 0.0, 1.0])
        recall = np.array([0.0, 1.0, 1.0])
        art = ascii_roc(fa, recall, width=21, height=9)
        lines = art.splitlines()
        top_row = [line for line in lines if line.startswith("1.0 ")][0]
        assert "*" in top_row[:8]  # recall 1 at low FA

    def test_contains_axes_labels(self):
        art = ascii_roc(np.array([0.0, 1.0]), np.array([0.0, 1.0]))
        assert "false-alarm rate" in art
        assert "recall" in art

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            ascii_roc(np.zeros(3), np.zeros(4))


class TestStats:
    def test_summary_fields(self):
        summary = summarize_values([1.0, 2.0, 3.0])
        assert summary.mean == pytest.approx(2.0)
        assert summary.std == pytest.approx(1.0)
        assert summary.ci_low <= summary.mean <= summary.ci_high
        assert "n=3" in str(summary)

    def test_single_value(self):
        summary = summarize_values([5.0])
        assert summary.mean == 5.0
        assert summary.std == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize_values([])

    def test_bootstrap_interval_contains_mean_of_tight_data(self, rng):
        values = 10.0 + 0.01 * rng.normal(size=30)
        low, high = bootstrap_ci(values)
        assert low <= values.mean() <= high
        assert high - low < 0.02

    def test_bootstrap_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci([], confidence=0.95)
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], confidence=1.5)

    def test_run_over_seeds(self):
        def experiment(seed):
            rng = np.random.default_rng(seed)
            return {"accuracy": 0.8 + 0.01 * rng.random(),
                    "fa": float(rng.integers(10, 20))}

        summaries = run_over_seeds(experiment, seeds=[0, 1, 2, 3])
        assert set(summaries) == {"accuracy", "fa"}
        assert isinstance(summaries["accuracy"], SeedSummary)
        assert 0.8 <= summaries["accuracy"].mean <= 0.81

    def test_run_over_seeds_validation(self):
        with pytest.raises(ValueError):
            run_over_seeds(lambda s: {}, seeds=[])

        outputs = iter([{"a": 1.0}, {"b": 2.0}])
        with pytest.raises(ValueError):
            run_over_seeds(lambda s: next(outputs), seeds=[0, 1])
