"""Tests for the binary convolution layer (Eq. 14-15 and Eq. 13)."""

import numpy as np
import pytest

from repro.binary import BinaryConv2D, quantize
from repro.nn import functional as F


def reference_forward(layer, x):
    """Independent re-derivation of Eq. 15 with nested loops over the
    im2col decomposition (slow but obviously correct)."""
    k = layer.kernel_size
    c_out = layer.out_channels
    n, c_in, h, w = x.shape
    oh = F.conv_output_size(h, k, layer.stride, layer.padding)
    ow = F.conv_output_size(w, k, layer.stride, layer.padding)
    cols = F.im2col(quantize.sign(x), k, k, layer.stride, layer.padding,
                    pad_value=-1.0)
    w_b, alpha_w = quantize.binarize_weights(layer.weight.data)
    w_mat = w_b.reshape(c_out, -1)
    out = np.zeros((c_out, cols.shape[1]))
    if layer.scaling == "channelwise":
        alpha = quantize.input_scale_channelwise(x, k, k, layer.stride,
                                                 layer.padding)
        for f in range(c_out):
            for p in range(cols.shape[1]):
                acc = 0.0
                for c in range(c_in):
                    sl = slice(c * k * k, (c + 1) * k * k)
                    acc += alpha[c, p] * float(w_mat[f, sl] @ cols[sl, p])
                out[f, p] = alpha_w[f] * acc
    elif layer.scaling == "xnor":
        alpha = quantize.input_scale_xnor(x, k, k, layer.stride, layer.padding)
        for f in range(c_out):
            out[f] = alpha_w[f] * (w_mat[f] @ cols) * alpha[0]
    else:
        for f in range(c_out):
            out[f] = alpha_w[f] * (w_mat[f] @ cols)
    return out.reshape(c_out, n, oh, ow).transpose(1, 0, 2, 3)


class TestForward:
    @pytest.mark.parametrize("scaling", ["channelwise", "xnor", "none"])
    def test_matches_reference(self, rng, scaling):
        layer = BinaryConv2D(3, 4, 3, stride=1, padding=1, scaling=scaling,
                             rng=rng)
        x = rng.normal(size=(2, 3, 5, 5))
        np.testing.assert_allclose(
            layer.forward(x), reference_forward(layer, x), atol=1e-10
        )

    def test_strided(self, rng):
        layer = BinaryConv2D(2, 3, 3, stride=2, padding=1, scaling="xnor",
                             rng=rng)
        x = rng.normal(size=(1, 2, 8, 8))
        out = layer.forward(x)
        assert out.shape == (1, 3, 4, 4)
        np.testing.assert_allclose(out, reference_forward(layer, x), atol=1e-10)

    def test_1x1_shortcut_conv(self, rng):
        layer = BinaryConv2D(4, 8, 1, stride=2, padding=0, scaling="channelwise",
                             rng=rng)
        x = rng.normal(size=(2, 4, 6, 6))
        out = layer.forward(x)
        assert out.shape == (2, 8, 3, 3)
        np.testing.assert_allclose(out, reference_forward(layer, x), atol=1e-10)

    def test_invalid_scaling_raises(self):
        with pytest.raises(ValueError):
            BinaryConv2D(1, 1, 3, scaling="bogus")

    def test_channel_mismatch_raises(self, rng):
        layer = BinaryConv2D(3, 4, 3, rng=rng)
        with pytest.raises(ValueError):
            layer.forward(rng.normal(size=(1, 2, 5, 5)))

    def test_output_insensitive_to_weight_magnitude_pattern(self, rng):
        """Scaling the weights scales the output linearly via alpha_W:
        the binary pattern itself is magnitude-invariant."""
        layer = BinaryConv2D(2, 2, 3, padding=1, scaling="none", rng=rng)
        x = rng.normal(size=(1, 2, 4, 4))
        out1 = layer.forward(x)
        layer.weight.data *= 2.0
        np.testing.assert_allclose(layer.forward(x), 2.0 * out1, atol=1e-10)


class TestBackward:
    def test_weight_gradient_is_eq13_of_estimated_grad(self, rng):
        """The accumulated weight gradient must equal Eq. 13 applied to
        the gradient w.r.t. the estimated weight, which we recompute
        independently from the cached scaled columns."""
        layer = BinaryConv2D(2, 3, 3, padding=1, scaling="channelwise", rng=rng)
        x = rng.normal(size=(2, 2, 5, 5))
        out = layer.forward(x, training=True)
        g = rng.normal(size=out.shape)
        cols_scaled = layer._cache["cols_scaled"].copy()
        alpha_w = layer._cache["alpha_w"].copy()
        layer.backward(g)
        grad_mat = g.transpose(1, 0, 2, 3).reshape(3, -1)
        grad_est = (grad_mat @ cols_scaled.T).reshape(layer.weight.shape)
        expected = quantize.weight_ste_grad(layer.weight.data, grad_est, alpha_w)
        np.testing.assert_allclose(layer.weight.grad, expected, atol=1e-10)

    def test_input_gradient_respects_ste_window(self, rng):
        """Input entries with |x| >= 1 must receive zero gradient (Eq. 10)."""
        layer = BinaryConv2D(1, 2, 3, padding=1, scaling="xnor", rng=rng)
        x = rng.normal(size=(1, 1, 4, 4))
        x[0, 0, 0, 0] = 5.0   # saturated
        x[0, 0, 1, 1] = 0.5   # in-window
        out = layer.forward(x, training=True)
        gx = layer.backward(np.ones_like(out))
        assert gx[0, 0, 0, 0] == 0.0
        assert gx[0, 0, 1, 1] != 0.0

    def test_backward_before_forward_raises(self, rng):
        layer = BinaryConv2D(1, 1, 3, rng=rng)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 1, 3, 3)))

    def test_gradients_accumulate(self, rng):
        layer = BinaryConv2D(1, 2, 3, padding=1, scaling="none", rng=rng)
        x = rng.normal(size=(1, 1, 4, 4))
        out = layer.forward(x, training=True)
        g = rng.normal(size=out.shape)
        layer.backward(g)
        first = layer.weight.grad.copy()
        layer.forward(x, training=True)
        layer.backward(g)
        np.testing.assert_allclose(layer.weight.grad, 2 * first, atol=1e-12)


class TestClip:
    def test_clip_weights(self, rng):
        layer = BinaryConv2D(1, 1, 3, rng=rng)
        layer.weight.data[...] = 5.0
        layer.clip_weights()
        np.testing.assert_allclose(layer.weight.data, 1.0)

    def test_clip_preserves_in_range(self, rng):
        layer = BinaryConv2D(1, 1, 3, rng=rng)
        before = layer.weight.data.copy()  # Xavier init is within [-1, 1]
        layer.clip_weights()
        np.testing.assert_array_equal(layer.weight.data, before)
