"""Tests for the binarized dense layer."""

import numpy as np
import pytest

from repro.binary import BinaryDense, quantize


class TestForward:
    def test_matches_manual_formula(self, rng):
        layer = BinaryDense(6, 3, rng=rng)
        x = rng.normal(size=(4, 6))
        out = layer.forward(x)
        w = layer.weight.data
        expected = (
            quantize.sign(x) * np.abs(x).mean(axis=1, keepdims=True)
        ) @ (quantize.sign(w) * np.abs(w).mean(axis=0))
        np.testing.assert_allclose(out, expected, atol=1e-12)

    def test_unscaled_variant(self, rng):
        layer = BinaryDense(5, 2, scaling=False, rng=rng)
        x = rng.normal(size=(3, 5))
        w = layer.weight.data
        expected = quantize.sign(x) @ (quantize.sign(w) * np.abs(w).mean(axis=0))
        np.testing.assert_allclose(layer.forward(x), expected, atol=1e-12)


class TestBackward:
    def test_weight_gradient_dense_eq13(self, rng):
        layer = BinaryDense(4, 2, rng=rng)
        x = rng.normal(size=(3, 4))
        out = layer.forward(x, training=True)
        g = rng.normal(size=out.shape)
        x_est = layer._cache["x_est"].copy()
        alpha_w = layer._cache["alpha_w"].copy()
        layer.backward(g)
        w = layer.weight.data
        grad_est = x_est.T @ g
        expected = grad_est * (1.0 / 4 + alpha_w * (np.abs(w) < 1))
        np.testing.assert_allclose(layer.weight.grad, expected, atol=1e-12)

    def test_input_ste_window(self, rng):
        layer = BinaryDense(3, 2, rng=rng)
        x = np.array([[0.5, 2.0, -0.3]])
        out = layer.forward(x, training=True)
        gx = layer.backward(np.ones_like(out))
        assert gx[0, 1] == 0.0      # saturated input
        assert gx[0, 0] != 0.0

    def test_backward_before_forward_raises(self, rng):
        with pytest.raises(RuntimeError):
            BinaryDense(2, 2, rng=rng).backward(np.zeros((1, 2)))


def test_clip_weights(rng):
    layer = BinaryDense(3, 3, rng=rng)
    layer.weight.data[...] = -4.0
    layer.clip_weights()
    np.testing.assert_allclose(layer.weight.data, -1.0)
