"""Tests for bit-packed {-1,+1} arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.binary import BinaryConv2D, bitpack, quantize
from repro.nn import functional as F


class TestPackSigns:
    def test_word_count(self, rng):
        x = quantize.sign(rng.normal(size=(3, 70)))
        packed = bitpack.pack_signs(x)
        assert packed.shape == (3, 2)
        assert packed.dtype == np.uint64

    def test_exact_word_boundary(self, rng):
        x = quantize.sign(rng.normal(size=(2, 128)))
        assert bitpack.pack_signs(x).shape == (2, 2)

    def test_bit_semantics(self):
        x = np.array([[1.0, -1.0, 1.0, 1.0]])
        packed = bitpack.pack_signs(x)
        assert packed[0, 0] == 0b1101

    def test_all_negative_is_zero(self):
        packed = bitpack.pack_signs(-np.ones((1, 100)))
        assert not packed.any()


class TestPackedDot:
    def test_matches_dense_dot(self, rng):
        a = quantize.sign(rng.normal(size=90))
        b = quantize.sign(rng.normal(size=90))
        packed = bitpack.packed_dot(
            bitpack.pack_signs(a), bitpack.pack_signs(b), 90
        )
        assert packed == int(a @ b)

    def test_self_dot_is_n(self, rng):
        a = quantize.sign(rng.normal(size=130))
        pa = bitpack.pack_signs(a)
        assert bitpack.packed_dot(pa, pa, 130) == 130

    def test_opposite_dot_is_minus_n(self, rng):
        a = quantize.sign(rng.normal(size=65))
        assert bitpack.packed_dot(
            bitpack.pack_signs(a), bitpack.pack_signs(-a), 65
        ) == -65

    def test_broadcast(self, rng):
        a = quantize.sign(rng.normal(size=(5, 40)))
        b = quantize.sign(rng.normal(size=40))
        dots = bitpack.packed_dot(
            bitpack.pack_signs(a), bitpack.pack_signs(b), 40
        )
        np.testing.assert_array_equal(dots, (a @ b).astype(np.int64))


class TestPackedMatmul:
    def test_matches_dense(self, rng):
        a = quantize.sign(rng.normal(size=(6, 100)))
        b = quantize.sign(rng.normal(size=(4, 100)))
        out = bitpack.packed_matmul(
            bitpack.pack_signs(a), bitpack.pack_signs(b), 100
        )
        np.testing.assert_array_equal(out, (a @ b.T).astype(np.int64))

    def test_tall_operand_path(self, rng):
        """rows > cols exercises the column-major loop branch."""
        a = quantize.sign(rng.normal(size=(9, 33)))
        b = quantize.sign(rng.normal(size=(2, 33)))
        out = bitpack.packed_matmul(
            bitpack.pack_signs(a), bitpack.pack_signs(b), 33
        )
        np.testing.assert_array_equal(out, (a @ b.T).astype(np.int64))


class TestPackedConv:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1)])
    def test_matches_float_sign_conv(self, rng, stride, padding):
        """Packed popcount conv == float conv of the +/-1 tensors with
        -1 border padding (the library's padding convention)."""
        x = quantize.sign(rng.normal(size=(2, 3, 6, 6)))
        w = quantize.sign(rng.normal(size=(4, 3, 3, 3)))
        w_packed = bitpack.pack_filters(w)
        out = bitpack.binary_conv2d_packed(x, w_packed, 4, 3, stride, padding)
        cols = F.im2col(x, 3, 3, stride, padding, pad_value=-1.0)
        oh = F.conv_output_size(6, 3, stride, padding)
        expected = (w.reshape(4, -1) @ cols).reshape(4, 2, oh, oh)
        expected = expected.transpose(1, 0, 2, 3)
        np.testing.assert_array_equal(out, expected)

    def test_channelwise_path_matches_layer(self, rng):
        layer = BinaryConv2D(3, 4, 3, stride=1, padding=1,
                             scaling="channelwise", rng=rng)
        x = rng.normal(size=(1, 3, 6, 6))
        w_b, alpha_w = quantize.binarize_weights(layer.weight.data)
        w_packed = bitpack.pack_signs(w_b.reshape(4, 3, 9))
        alpha = quantize.input_scale_channelwise(x, 3, 3, 1, 1)
        out = bitpack.binary_conv2d_packed_channelwise(
            quantize.sign(x), w_packed, alpha, 4, 3, 1, 1
        ) * alpha_w[None, :, None, None]
        np.testing.assert_allclose(out, layer.forward(x), atol=1e-10)


class TestChannelPacking:
    def test_pack_channels_shape_and_bits(self, rng):
        x = quantize.sign(rng.normal(size=(2, 70, 3, 3)))
        packed = bitpack.pack_channels(x)
        assert packed.shape == (2, 2, 3, 3)
        # channel 0's sign lands in bit 0 of word 0
        assert ((packed[:, 0, :, :] & 1) == (x[:, 0] > 0)).all()
        # channel 64's sign lands in bit 0 of word 1
        assert ((packed[:, 1, :, :] & 1) == (x[:, 64] > 0)).all()

    def test_pack_filters_matches_im2col_order(self, rng):
        """pack_filters rows must line up with im2col of pack_channels:
        a filter dotted against its own pattern gives the full n."""
        w = quantize.sign(rng.normal(size=(1, 5, 3, 3)))
        w_packed = bitpack.pack_filters(w)
        # build an input equal to the filter pattern at the only position
        out = bitpack.binary_conv2d_packed(w[:1], w_packed, 1, 3, 1, 0,
                                           in_channels=5)
        assert out[0, 0, 0, 0] == 5 * 9

    def test_many_filters_vectorised_branch(self, rng):
        """out_channels > words exercises the tap-accumulation path."""
        x = quantize.sign(rng.normal(size=(1, 4, 5, 5)))
        w = quantize.sign(rng.normal(size=(16, 4, 3, 3)))
        out = bitpack.binary_conv2d_packed(x, bitpack.pack_filters(w),
                                           16, 3, 1, 1)
        cols = F.im2col(x, 3, 3, 1, 1, pad_value=-1.0)
        expected = (w.reshape(16, -1) @ cols).reshape(16, 1, 5, 5)
        np.testing.assert_array_equal(out, expected.transpose(1, 0, 2, 3))


class TestPopcount:
    def test_known_values(self):
        x = np.array([0, 1, 3, 255, 2**64 - 1], dtype=np.uint64)
        np.testing.assert_array_equal(
            bitpack.popcount(x).astype(int), [0, 1, 2, 8, 64]
        )


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(1, 200),
    seed=st.integers(0, 10_000),
)
def test_packed_dot_equals_dense_property(n, seed):
    """Property: n - 2*hamming == dense +/-1 dot for any length,
    including non-multiples of 64."""
    rng = np.random.default_rng(seed)
    a = quantize.sign(rng.normal(size=n))
    b = quantize.sign(rng.normal(size=n))
    packed = bitpack.packed_dot(bitpack.pack_signs(a), bitpack.pack_signs(b), n)
    assert packed == int(a @ b)


class TestPopcountTable16:
    @pytest.mark.parametrize("dtype", [np.uint8, np.uint16, np.uint32,
                                       np.uint64])
    def test_parity_with_active_path(self, rng, dtype):
        """The LUT fallback agrees with whatever popcount is active."""
        bits = np.iinfo(dtype).bits
        x = rng.integers(0, 2**bits, size=(7, 13), dtype=np.uint64
                         ).astype(dtype)
        np.testing.assert_array_equal(
            bitpack.popcount_table16(x).astype(np.int64),
            bitpack.popcount(x).astype(np.int64),
        )

    def test_extremes(self):
        x = np.array([0, 1, 2**63, 2**64 - 1], dtype=np.uint64)
        np.testing.assert_array_equal(
            bitpack.popcount_table16(x).astype(int), [0, 1, 1, 64]
        )

    def test_non_contiguous_input(self, rng):
        x = rng.integers(0, 2**64, size=(6, 8), dtype=np.uint64)[::2, ::2]
        np.testing.assert_array_equal(
            bitpack.popcount_table16(x).astype(np.int64),
            bitpack.popcount(np.ascontiguousarray(x)).astype(np.int64),
        )


class TestTiledConv:
    @pytest.mark.parametrize("c,k,stride,padding", [
        (1, 3, 2, 1), (1, 3, 1, 1), (8, 3, 2, 1), (80, 3, 1, 1), (4, 1, 1, 0),
    ])
    def test_bit_identical_to_untiled(self, rng, c, k, stride, padding):
        x = quantize.sign(rng.normal(size=(2, c, 12, 12)))
        w = quantize.sign(rng.normal(size=(5, c, k, k)))
        w_packed = bitpack.pack_filters(w)
        full = bitpack.binary_conv2d_packed(x, w_packed, 5, k, stride, padding)
        for max_cols in (1, 7, 24, 10_000):
            tiled = bitpack.binary_conv2d_packed_tiled(
                x, w_packed, 5, k, stride, padding, max_cols=max_cols
            )
            np.testing.assert_array_equal(tiled, full)


class TestPackActivationPlane:
    def test_window_columns_are_plane_slices(self, rng):
        """A window's valid-conv columns are a slice of the plane grid."""
        k, stride = 3, 2
        plane = quantize.sign(rng.normal(size=(1, 1, 40, 40)))
        grid = bitpack.pack_activation_plane(plane, k, stride)
        oh = (40 - k) // stride + 1
        assert grid.shape[1:] == (oh, oh)
        # a 16x16 window at plane offset (8, 12): its valid columns
        window = plane[:, :, 8 : 8 + 16, 12 : 12 + 16]
        wcols = bitpack._pack_activation_columns(window, k, stride, 0)
        woh = (16 - k) // stride + 1
        view = grid[:, 4 : 4 + woh, 6 : 6 + woh]  # offsets / stride
        np.testing.assert_array_equal(
            view.reshape(view.shape[0], -1), wcols
        )

    def test_rejects_batched_input(self, rng):
        x = quantize.sign(rng.normal(size=(2, 1, 8, 8)))
        with pytest.raises(ValueError):
            bitpack.pack_activation_plane(x, 3, 1)


class TestPackedConvDots:
    def test_matches_packed_conv(self, rng):
        """The factored integer core reproduces binary_conv2d_packed."""
        c, k = 3, 3
        x = quantize.sign(rng.normal(size=(1, c, 10, 10)))
        w = quantize.sign(rng.normal(size=(6, c, k, k)))
        w_packed = bitpack.pack_filters(w)
        cols = bitpack._pack_activation_columns(x, k, 1, 1)
        dots = bitpack.packed_conv_dots(cols, w_packed, c * k * k)
        ref = bitpack.binary_conv2d_packed(x, w_packed, 6, k, 1, 1)
        np.testing.assert_array_equal(
            dots.reshape(6, 1, 10, 10).transpose(1, 0, 2, 3), ref
        )

    def test_table16_fast_path_matches_generic(self, rng):
        """Single-channel 3x3 dots hit the uint16 table; same integers."""
        k = 3
        x = quantize.sign(rng.normal(size=(2, 1, 12, 12)))
        w = quantize.sign(rng.normal(size=(8, 1, k, k)))
        w_packed = bitpack.pack_filters(w)
        cols = bitpack._pack_activation_columns(x, k, 1, 1)
        assert cols.dtype == np.uint16  # 9 bits: the table16 fast path
        fast = bitpack.packed_conv_dots(cols, w_packed, k * k)
        generic = bitpack.packed_conv_dots(
            cols.astype(np.uint64), w_packed, k * k
        )
        np.testing.assert_array_equal(fast, generic)

    def test_table16_skipped_above_64_filters(self, rng):
        """Wide filter banks fall back to the generic branch (the table
        would be 65 x 65536 int16 per bank, larger than the work)."""
        k = 3
        x = quantize.sign(rng.normal(size=(1, 1, 8, 8)))
        w = quantize.sign(rng.normal(size=(65, 1, k, k)))
        w_packed = bitpack.pack_filters(w)
        cols = bitpack._pack_activation_columns(x, k, 1, 1)
        out = bitpack.packed_conv_dots(cols, w_packed, k * k)
        ref = bitpack.packed_conv_dots(cols.astype(np.uint64), w_packed, k * k)
        np.testing.assert_array_equal(out, ref)
