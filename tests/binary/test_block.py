"""Tests for the BNN convolution block (Figure 3) and weight clipping."""

import numpy as np

from repro.binary import BinaryConv2D, BNNConvBlock, clip_binary_weights
from repro.models import bnn_resnet8
from repro.nn import Sequential


class TestBNNConvBlock:
    def test_composes_bn_then_conv(self, rng):
        block = BNNConvBlock(2, 4, 3, rng=rng)
        x = rng.normal(size=(3, 2, 6, 6))
        out = block.forward(x, training=True)
        manual = block.conv.forward(block.bn.forward(x, training=True),
                                    training=True)
        np.testing.assert_allclose(out, manual, atol=1e-12)

    def test_same_padding_default(self, rng):
        block = BNNConvBlock(1, 2, 3, rng=rng)
        out = block.forward(rng.normal(size=(1, 1, 8, 8)))
        assert out.shape == (1, 2, 8, 8)

    def test_stride_and_explicit_padding(self, rng):
        block = BNNConvBlock(1, 2, 1, stride=2, padding=0, rng=rng)
        out = block.forward(rng.normal(size=(1, 1, 8, 8)))
        assert out.shape == (1, 2, 4, 4)

    def test_backward_chains(self, rng):
        block = BNNConvBlock(2, 2, 3, rng=rng)
        x = rng.normal(size=(2, 2, 5, 5))
        out = block.forward(x, training=True)
        gx = block.backward(np.ones_like(out))
        assert gx.shape == x.shape
        assert np.abs(block.conv.weight.grad).sum() > 0
        assert np.abs(block.bn.gamma.grad).sum() > 0


class TestClipBinaryWeights:
    def test_clips_every_binary_layer_in_tree(self, rng):
        model = bnn_resnet8(seed=0)
        for _, p in model.named_parameters():
            if "conv.weight" in p.name:
                p.data[...] = 7.0
        clip_binary_weights(model)
        for _, p in model.named_parameters():
            if "conv.weight" in p.name:
                assert np.abs(p.data).max() <= 1.0

    def test_leaves_non_binary_layers_alone(self, rng):
        model = bnn_resnet8(seed=0)
        # the dense head is full precision and must not be clamped
        head = model.layers[-1]
        head.weight.data[...] = 3.0
        clip_binary_weights(model)
        np.testing.assert_allclose(head.weight.data, 3.0)

    def test_handles_plain_sequential(self, rng):
        net = Sequential(BinaryConv2D(1, 1, 3, rng=rng))
        net.layers[0].weight.data[...] = -9.0
        clip_binary_weights(net)
        np.testing.assert_allclose(net.layers[0].weight.data, -1.0)
