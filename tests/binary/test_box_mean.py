"""Property tests for the integral-image box filter behind Eq. 14."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.binary.quantize import box_mean
from repro.nn import functional as F


def naive_box_mean(x, k, stride, padding):
    """Window means via im2col — the obviously correct reference."""
    n, c = x.shape[:2]
    cols = F.im2col(x, k, k, stride, padding)
    means = cols.reshape(c, k * k, -1).mean(axis=1)  # (c, n*oh*ow)
    oh = F.conv_output_size(x.shape[2], k, stride, padding)
    ow = F.conv_output_size(x.shape[3], k, stride, padding)
    return means.reshape(c, n, oh, ow).transpose(1, 0, 2, 3)


class TestBoxMean:
    @pytest.mark.parametrize("k,stride,padding",
                             [(3, 1, 1), (3, 2, 1), (1, 1, 0), (5, 1, 2),
                              (2, 2, 0)])
    def test_matches_im2col_reference(self, rng, k, stride, padding):
        x = rng.normal(size=(2, 3, 8, 8))
        np.testing.assert_allclose(
            box_mean(x, k, k, stride, padding),
            naive_box_mean(x, k, stride, padding),
            atol=1e-10,
        )

    def test_constant_interior(self):
        x = np.full((1, 1, 6, 6), 3.0)
        means = box_mean(x, 3, 3, 1, 0)
        np.testing.assert_allclose(means, 3.0)

    def test_zero_padding_attenuates_borders(self):
        x = np.ones((1, 1, 4, 4))
        means = box_mean(x, 3, 3, 1, 1)
        assert means[0, 0, 0, 0] == pytest.approx(4.0 / 9.0)
        assert means[0, 0, 1, 1] == pytest.approx(1.0)


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 3000),
    k=st.integers(1, 4),
    stride=st.integers(1, 2),
    size=st.integers(4, 10),
)
def test_box_mean_property(seed, k, stride, size):
    """Property: integral-image window means equal the im2col means for
    arbitrary geometry."""
    rng = np.random.default_rng(seed)
    padding = k // 2
    x = rng.normal(size=(1, 2, size, size))
    np.testing.assert_allclose(
        box_mean(x, k, k, stride, padding),
        naive_box_mean(x, k, stride, padding),
        atol=1e-9,
    )
