"""Tests for the packed inference engine: bit-exact parity with the
float-simulated forward pass."""

import numpy as np
import pytest

from repro.binary import (
    BinaryConv2D,
    BinaryDense,
    BNNConvBlock,
    PackedBNN,
)
from repro.models import bnn_resnet8, bnn_resnet12
from repro.nn import (
    BatchNorm2D,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool2D,
    HardTanh,
    MaxPool2D,
    Module,
    ReLU,
    Sequential,
    SignSTE,
)


class TestLayerParity:
    @pytest.mark.parametrize("scaling", ["channelwise", "xnor", "none"])
    def test_binary_conv(self, rng, scaling):
        layer = BinaryConv2D(3, 5, 3, stride=2, padding=1, scaling=scaling,
                             rng=rng)
        x = rng.normal(size=(2, 3, 9, 9))
        np.testing.assert_allclose(
            PackedBNN(layer).forward(x), layer.forward(x), atol=1e-9
        )

    def test_binary_dense(self, rng):
        layer = BinaryDense(70, 4, rng=rng)
        x = rng.normal(size=(3, 70))
        np.testing.assert_allclose(
            PackedBNN(layer).forward(x), layer.forward(x), atol=1e-9
        )

    def test_batchnorm_uses_running_stats(self, rng):
        bn = BatchNorm2D(3)
        for _ in range(5):
            bn.forward(rng.normal(loc=1.5, size=(8, 3, 4, 4)), training=True)
        x = rng.normal(size=(2, 3, 4, 4))
        np.testing.assert_allclose(
            PackedBNN(bn).forward(x), bn.forward(x, training=False), atol=1e-12
        )

    def test_float_conv_and_misc_layers(self, rng):
        net = Sequential(
            Conv2D(1, 3, 3, padding=1, rng=rng),
            ReLU(),
            MaxPool2D(2),
            HardTanh(),
            SignSTE(),
            Dropout(0.5, rng=rng),
            Flatten(),
            Dense(3 * 4 * 4, 2, rng=rng),
        )
        x = rng.normal(size=(2, 1, 8, 8))
        np.testing.assert_allclose(
            PackedBNN(net).forward(x), net.forward(x), atol=1e-9
        )

    def test_unknown_layer_raises(self):
        class Strange(Module):
            pass

        with pytest.raises(TypeError):
            PackedBNN(Strange())


class TestNetworkParity:
    @pytest.mark.parametrize("scaling", ["channelwise", "xnor", "none"])
    def test_full_bnn_resnet(self, rng, scaling):
        model = bnn_resnet8(scaling=scaling, seed=3, base_width=4)
        # accumulate batch-norm statistics so eval mode is non-trivial
        model.forward(rng.normal(size=(8, 1, 16, 16)), training=True)
        x = rng.normal(size=(4, 1, 16, 16))
        np.testing.assert_allclose(
            PackedBNN(model).forward(x), model.forward(x), atol=1e-8
        )

    def test_resnet12_block_with_projection(self, rng):
        model = bnn_resnet12(scaling="xnor", seed=1, base_width=4)
        model.forward(rng.normal(size=(4, 1, 32, 32)), training=True)
        x = rng.normal(size=(2, 1, 32, 32))
        np.testing.assert_allclose(
            PackedBNN(model).forward(x), model.forward(x), atol=1e-8
        )

    def test_engine_is_a_snapshot(self, rng):
        model = bnn_resnet8(seed=0, base_width=4)
        x = rng.normal(size=(2, 1, 16, 16))
        engine = PackedBNN(model)
        before = engine.forward(x)
        for p in model.parameters():
            p.data[...] = 0.12345  # packed weights were captured already
        np.testing.assert_allclose(engine.forward(x), before)

    def test_predict_logits_batches(self, rng):
        model = bnn_resnet8(seed=0, base_width=4)
        engine = PackedBNN(model)
        x = rng.normal(size=(10, 1, 16, 16))
        np.testing.assert_allclose(
            engine.predict_logits(x, batch_size=3), engine.forward(x), atol=1e-10
        )

    def test_argmax_predictions_identical(self, rng):
        """The deployment guarantee: packed predictions never differ
        from the float simulation's predictions."""
        model = bnn_resnet8(scaling="xnor", seed=7, base_width=4)
        model.forward(rng.normal(size=(16, 1, 16, 16)), training=True)
        x = rng.normal(size=(32, 1, 16, 16))
        sim = model.forward(x).argmax(1)
        packed = PackedBNN(model).forward(x).argmax(1)
        np.testing.assert_array_equal(sim, packed)
