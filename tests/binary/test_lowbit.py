"""Tests for the ternary and int8 quantization layers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.binary import (
    Int8Conv2D,
    TernaryConv2D,
    dequantize_int8,
    fake_quantize,
    quantize_int8,
    ternarize_weights,
)
from repro.nn import functional as F


class TestTernarizeWeights:
    def test_values_in_alphabet(self, rng):
        w = rng.normal(size=(4, 3, 3, 3))
        pattern, alpha = ternarize_weights(w)
        assert set(np.unique(pattern)) <= {-1.0, 0.0, 1.0}
        assert alpha.shape == (4,)
        assert (alpha >= 0).all()

    def test_threshold_semantics(self):
        w = np.array([[[[1.0, -1.0, 0.1, -0.1]]]]).reshape(1, 1, 2, 2)
        pattern, alpha = ternarize_weights(w, threshold_factor=0.7)
        # mean|w| = 0.55, delta = 0.385: the 0.1s zero out
        np.testing.assert_array_equal(
            pattern.reshape(-1), [1.0, -1.0, 0.0, 0.0]
        )
        assert alpha[0] == pytest.approx(1.0)

    def test_alpha_is_surviving_mean(self, rng):
        w = rng.normal(size=(2, 2, 3, 3))
        pattern, alpha = ternarize_weights(w)
        for k in range(2):
            kept = np.abs(w[k])[pattern[k] != 0]
            assert alpha[k] == pytest.approx(kept.mean())

    def test_all_below_threshold_gives_zero_filter(self):
        w = np.zeros((1, 1, 2, 2))
        pattern, alpha = ternarize_weights(w)
        assert not pattern.any()
        assert alpha[0] == 0.0

    def test_non_4d_raises(self, rng):
        with pytest.raises(ValueError):
            ternarize_weights(rng.normal(size=(3, 3)))


class TestTernaryConv:
    def test_forward_uses_quantized_weights(self, rng):
        layer = TernaryConv2D(2, 3, 3, padding=1, rng=rng)
        x = rng.normal(size=(1, 2, 5, 5))
        pattern, alpha = ternarize_weights(layer.weight.data)
        expected, _ = F.conv2d_forward(
            x, alpha.reshape(-1, 1, 1, 1) * pattern, None, 1, 1
        )
        np.testing.assert_allclose(layer.forward(x), expected, atol=1e-12)

    def test_backward_straight_through(self, rng):
        layer = TernaryConv2D(1, 2, 3, rng=rng)
        x = rng.normal(size=(1, 1, 4, 4))
        out = layer.forward(x, training=True)
        gx = layer.backward(np.ones_like(out))
        assert gx.shape == x.shape
        assert np.abs(layer.weight.grad).sum() > 0

    def test_sparsity_reported(self, rng):
        layer = TernaryConv2D(2, 2, 3, rng=rng)
        assert 0.0 <= layer.sparsity() <= 1.0

    def test_clip_weights(self, rng):
        layer = TernaryConv2D(1, 1, 3, rng=rng)
        layer.weight.data[...] = 9.0
        layer.clip_weights()
        assert np.abs(layer.weight.data).max() <= 1.0

    def test_backward_before_forward_raises(self, rng):
        with pytest.raises(RuntimeError):
            TernaryConv2D(1, 1, 3, rng=rng).backward(np.zeros((1, 1, 1, 1)))


class TestInt8:
    def test_roundtrip_small_error(self, rng):
        x = rng.normal(size=100)
        q, scale = quantize_int8(x)
        recovered = dequantize_int8(q, scale)
        assert np.abs(recovered - x).max() <= scale / 2 + 1e-12

    def test_zero_tensor(self):
        q, scale = quantize_int8(np.zeros(5))
        assert not q.any()
        assert scale == 1.0

    def test_range_clamped(self):
        q, _ = quantize_int8(np.array([1.0, -1.0, 0.0]))
        assert q.max() == 127 and q.min() == -127

    def test_fake_quantize_idempotent(self, rng):
        x = rng.normal(size=50)
        once = fake_quantize(x)
        np.testing.assert_allclose(fake_quantize(once), once, atol=1e-9)

    def test_conv_close_to_float(self, rng):
        """int8 is the mild quantization: outputs stay near float."""
        layer = Int8Conv2D(2, 3, 3, padding=1, rng=rng)
        x = rng.normal(size=(2, 2, 6, 6))
        exact, _ = F.conv2d_forward(x, layer.weight.data, None, 1, 1)
        approx = layer.forward(x)
        rel = np.linalg.norm(approx - exact) / np.linalg.norm(exact)
        assert rel < 0.05

    def test_conv_backward(self, rng):
        layer = Int8Conv2D(1, 2, 3, rng=rng)
        x = rng.normal(size=(1, 1, 4, 4))
        out = layer.forward(x, training=True)
        gx = layer.backward(np.ones_like(out))
        assert gx.shape == x.shape
        assert np.abs(layer.weight.grad).sum() > 0

    def test_backward_before_forward_raises(self, rng):
        with pytest.raises(RuntimeError):
            Int8Conv2D(1, 1, 3, rng=rng).backward(np.zeros((1, 1, 1, 1)))


@settings(max_examples=30, deadline=None)
@given(x=arrays(np.float64, st.integers(1, 40),
                elements=st.floats(-100, 100, allow_nan=False)))
def test_int8_error_bound_property(x):
    """Property: fake quantization error never exceeds half a step."""
    q, scale = quantize_int8(x)
    recovered = dequantize_int8(q, scale)
    assert np.abs(recovered - x).max() <= scale / 2 + 1e-9


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 5000), factor=st.floats(0.2, 1.2))
def test_ternary_quantization_error_bounded_property(seed, factor):
    """Property: the ternary estimate never has larger L2 error than the
    all-zero estimate (alpha is fitted to the surviving pattern)."""
    rng = np.random.default_rng(seed)
    w = rng.normal(size=(2, 1, 3, 3))
    pattern, alpha = ternarize_weights(w, threshold_factor=factor)
    estimate = alpha.reshape(-1, 1, 1, 1) * pattern
    assert np.linalg.norm(w - estimate) <= np.linalg.norm(w) + 1e-9
