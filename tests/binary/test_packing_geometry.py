"""Edge-case tests for the dense tap-packing geometry."""

import numpy as np
import pytest

from repro.binary import bitpack, quantize
from repro.nn import functional as F


class TestTapPackingArithmetic:
    def test_taps_per_word(self):
        assert bitpack._taps_per_word(1) == 64
        assert bitpack._taps_per_word(16) == 4
        assert bitpack._taps_per_word(33) == 1
        assert bitpack._taps_per_word(64) == 1
        assert bitpack._taps_per_word(65) == 1
        assert bitpack._taps_per_word(128) == 1

    def test_conv_words(self):
        assert bitpack._conv_words(1, 3) == 1      # 9 taps x 1 bit
        assert bitpack._conv_words(16, 3) == 3     # 9 taps / 4 per word
        assert bitpack._conv_words(64, 3) == 9     # 1 tap per word
        assert bitpack._conv_words(65, 3) == 18    # 2 channel words per tap
        assert bitpack._conv_words(128, 1) == 2

    @pytest.mark.parametrize("c", [1, 2, 7, 16, 24, 33, 63, 64, 65, 96, 130])
    def test_packed_conv_exact_across_channel_counts(self, rng, c):
        """The n - 2*hamming identity must hold at every packing regime:
        dense multi-tap words, one-tap words, multi-word channels."""
        x = quantize.sign(rng.normal(size=(1, c, 5, 5)))
        w = quantize.sign(rng.normal(size=(3, c, 3, 3)))
        out = bitpack.binary_conv2d_packed(
            x, bitpack.pack_filters(w), 3, 3, 1, 1, in_channels=c
        )
        cols = F.im2col(x, 3, 3, 1, 1, pad_value=-1.0)
        expected = (w.reshape(3, -1) @ cols).reshape(3, 1, 5, 5)
        np.testing.assert_array_equal(out, expected.transpose(1, 0, 2, 3))

    @pytest.mark.parametrize("k", [1, 2, 3, 5])
    def test_packed_conv_exact_across_kernels(self, rng, k):
        c = 4
        size = 7
        x = quantize.sign(rng.normal(size=(2, c, size, size)))
        w = quantize.sign(rng.normal(size=(2, c, k, k)))
        padding = k // 2
        out = bitpack.binary_conv2d_packed(
            x, bitpack.pack_filters(w), 2, k, 1, padding, in_channels=c
        )
        cols = F.im2col(x, k, k, 1, padding, pad_value=-1.0)
        oh = F.conv_output_size(size, k, 1, padding)
        expected = (w.reshape(2, -1) @ cols).reshape(2, 2, oh, oh)
        np.testing.assert_array_equal(out, expected.transpose(1, 0, 2, 3))

    def test_raw_input_binarized_by_sign_bit(self, rng):
        """Zero activations map to +1 (the quantize.sign convention)."""
        x = np.zeros((1, 1, 4, 4))
        w = quantize.sign(rng.normal(size=(1, 1, 3, 3)))
        out = bitpack.binary_conv2d_packed(
            x, bitpack.pack_filters(w), 1, 3, 1, 0, in_channels=1
        )
        # sign(0) = +1 everywhere: dot = sum of filter signs
        assert out[0, 0, 0, 0] == w.sum()

    def test_narrow_word_path_uint16(self, rng):
        """c*k*k <= 16 goes through the uint16 fast path; results must
        be identical to the general path's semantics."""
        x = quantize.sign(rng.normal(size=(2, 1, 6, 6)))
        w = quantize.sign(rng.normal(size=(4, 1, 3, 3)))
        out = bitpack.binary_conv2d_packed(
            x, bitpack.pack_filters(w), 4, 3, 2, 1, in_channels=1
        )
        cols = F.im2col(x, 3, 3, 2, 1, pad_value=-1.0)
        expected = (w.reshape(4, -1) @ cols).reshape(4, 2, 3, 3)
        np.testing.assert_array_equal(out, expected.transpose(1, 0, 2, 3))
