"""Tests for the binarization math of Section 3.2 (Eq. 4-9, 13, 14)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.binary import quantize
from repro.nn import functional as F


class TestOptimalScale:
    def test_matches_l1_over_n(self, rng):
        c = rng.normal(size=17)
        assert quantize.optimal_scale(c) == pytest.approx(
            np.abs(c).sum() / c.size
        )

    def test_axis_reduction(self, rng):
        c = rng.normal(size=(3, 4, 5))
        per_slice = quantize.optimal_scale(c, axis=(1, 2))
        assert per_slice.shape == (3,)
        np.testing.assert_allclose(per_slice, np.abs(c).mean(axis=(1, 2)))


@settings(max_examples=50, deadline=None)
@given(
    c=arrays(np.float64, st.integers(2, 24),
             elements=st.floats(-10, 10, allow_nan=False)),
    alpha=st.floats(0.001, 20.0),
)
def test_eq7_alpha_star_is_optimal_property(c, alpha):
    """Property (Eq. 7): alpha* = mean|C| minimises ||C - a*sign(C)||^2
    over all positive a, for the optimal sign pattern."""
    c_b = quantize.sign(c)
    alpha_star = quantize.optimal_scale(c)
    best = np.linalg.norm(c - alpha_star * c_b) ** 2
    other = np.linalg.norm(c - alpha * c_b) ** 2
    assert best <= other + 1e-9


@settings(max_examples=50, deadline=None)
@given(
    c=arrays(np.float64, st.integers(1, 12),
             elements=st.floats(-5, 5, allow_nan=False)),
    flip_mask=st.integers(0, 2**12 - 1),
)
def test_eq7_sign_pattern_is_optimal_property(c, flip_mask):
    """Property (Eq. 7): sign(C) beats any other +/-1 pattern at the
    respective optimal scale."""
    n = c.size
    c_b = quantize.sign(c)
    other = c_b.copy()
    for i in range(n):
        if flip_mask & (1 << i):
            other[i] = -other[i]
    def loss(pattern):
        a = max(float((c * pattern).sum()) / n, 0.0)  # optimal a for pattern
        return np.linalg.norm(c - a * pattern) ** 2
    assert loss(c_b) <= loss(other) + 1e-9


class TestBinarizeWeights:
    def test_shapes_and_values(self, rng):
        w = rng.normal(size=(4, 3, 3, 3))
        w_b, alpha = quantize.binarize_weights(w)
        assert w_b.shape == w.shape
        assert alpha.shape == (4,)
        assert set(np.unique(w_b)) <= {-1.0, 1.0}
        np.testing.assert_allclose(alpha, np.abs(w).mean(axis=(1, 2, 3)))

    def test_estimated_weight_formula(self, rng):
        """Eq. 9: W~ = (1/n) * sign(W) * ||W||_1 per filter."""
        w = rng.normal(size=(2, 2, 3, 3))
        w_b, alpha = quantize.binarize_weights(w)
        estimated = alpha.reshape(-1, 1, 1, 1) * w_b
        n = 2 * 3 * 3
        for k in range(2):
            manual = np.sign(w[k]) * np.abs(w[k]).sum() / n
            # quantize.sign maps 0 -> +1 but Gaussian draws are never 0
            np.testing.assert_allclose(estimated[k], manual)

    def test_non_4d_raises(self, rng):
        with pytest.raises(ValueError):
            quantize.binarize_weights(rng.normal(size=(3, 3)))


class TestWeightSTEGrad:
    def test_eq13_formula(self, rng):
        """Eq. 13: dl/dW = dl/dW~ * (1/n + alpha * 1_{|W|<1})."""
        w = rng.uniform(-2, 2, size=(3, 2, 3, 3))
        g = rng.normal(size=w.shape)
        _, alpha = quantize.binarize_weights(w)
        grad = quantize.weight_ste_grad(w, g, alpha)
        n = 2 * 3 * 3
        expected = g * (1.0 / n + alpha.reshape(-1, 1, 1, 1) * (np.abs(w) < 1))
        np.testing.assert_allclose(grad, expected)

    def test_saturated_weights_keep_scale_path(self, rng):
        """|W| >= 1 weights still receive the 1/n gradient (alpha path)."""
        w = np.full((1, 1, 2, 2), 3.0)
        g = np.ones_like(w)
        grad = quantize.weight_ste_grad(w, g, np.array([3.0]))
        np.testing.assert_allclose(grad, 0.25)


class TestInputScales:
    def test_channelwise_matches_naive(self, rng):
        """Eq. 14: alpha_T(c) = |T(c)| convolved with the averaging K."""
        x = rng.normal(size=(2, 3, 6, 6))
        k, stride, padding = 3, 1, 1
        alpha = quantize.input_scale_channelwise(x, k, k, stride, padding)
        cols = F.im2col(np.abs(x), k, k, stride, padding)
        naive = cols.reshape(3, k * k, -1).mean(axis=1)
        np.testing.assert_allclose(alpha, naive)

    def test_channelwise_constant_input(self):
        """Interior windows of a constant |x| average to that constant."""
        x = np.full((1, 2, 5, 5), -2.0)
        alpha = quantize.input_scale_channelwise(x, 3, 3, 1, 0)
        np.testing.assert_allclose(alpha, 2.0)

    def test_xnor_is_channel_mean(self, rng):
        x = rng.normal(size=(1, 4, 5, 5))
        xnor = quantize.input_scale_xnor(x, 3, 3, 1, 1)
        chan = quantize.input_scale_channelwise(x, 3, 3, 1, 1)
        assert xnor.shape[0] == 1
        np.testing.assert_allclose(xnor[0], chan.mean(axis=0), atol=1e-12)

    def test_scales_are_nonnegative(self, rng):
        x = rng.normal(size=(2, 2, 6, 6))
        assert (quantize.input_scale_channelwise(x, 3, 3, 2, 1) >= 0).all()
        assert (quantize.input_scale_xnor(x, 3, 3, 2, 1) >= 0).all()


@settings(max_examples=30, deadline=None)
@given(
    values=arrays(np.float64, (1, 2, 4, 4),
                  elements=st.floats(-8, 8, allow_nan=False)),
)
def test_channelwise_scaling_estimates_better_property(values):
    """The per-channel scaling map (Eq. 14) never estimates the true
    input tensor worse than XNOR-Net's channel-shared map — the paper's
    stated motivation for the refinement."""
    k = 3
    cols = F.im2col(values, k, k, 1, 1)            # true patches
    sign_cols = F.im2col(quantize.sign(values), k, k, 1, 1)
    chan = np.repeat(
        quantize.input_scale_channelwise(values, k, k, 1, 1), k * k, axis=0
    )
    xnor = quantize.input_scale_xnor(values, k, k, 1, 1)
    err_chan = np.linalg.norm(cols - sign_cols * chan)
    err_xnor = np.linalg.norm(cols - sign_cols * xnor)
    assert err_chan <= err_xnor + 1e-9
