"""Bit-identity of the plane-compiled scan engine (PackedBNN.plan_scan).

The whole point of the plane engine is that it is a pure optimisation:
for every scaling mode, stem stride and window phase, the logits must
equal ``predict_logits`` on the stacked window slices *bit for bit* —
not approximately.  These tests assert exact array equality.
"""

import numpy as np
import pytest

from repro.binary.inference import PackedBNN, PlaneScanPlan
from repro.models.bnn_resnet import build_bnn_resnet
from repro.nn.layers.container import Sequential
from repro.nn.layers.dense import Dense
from repro.nn.layers.pooling import GlobalAvgPool2D


def _warmed_model(scaling, stem_stride=1, channels=(4, 8), seed=3):
    rng = np.random.default_rng(99)
    model = build_bnn_resnet(channels, scaling=scaling, seed=seed,
                             stem_stride=stem_stride)
    x = (rng.random((8, 1, 32, 32)) > 0.5) * 2.0 - 1.0
    model.forward(x, training=True)  # give BN non-trivial running stats
    return model


def _plane(size=96, seed=0):
    rng = np.random.default_rng(seed)
    return (rng.random((size, size)) > 0.5) * 2.0 - 1.0


def _reference(engine, plane, window, origins):
    batch = np.stack(
        [plane[oy : oy + window, ox : ox + window] for ox, oy in origins]
    )[:, None]
    return engine.predict_logits(batch)


class TestPlaneScanBitIdentity:
    @pytest.mark.parametrize("scaling", ["xnor", "channelwise", "none"])
    @pytest.mark.parametrize("stem_stride", [1, 2])
    def test_matches_per_window_logits(self, scaling, stem_stride):
        engine = PackedBNN(_warmed_model(scaling, stem_stride))
        assert engine._stem_spec is not None
        plane, window = _plane(), 32
        # origins cover every phase of both stem strides, plus edges
        origins = [(x, y) for x in (0, 16, 33, 64) for y in (0, 7, 48, 64)]
        plan = engine.plan_scan(plane, window, origins)
        assert plan.uses_plane_stem
        np.testing.assert_array_equal(
            plan.logits(), _reference(engine, plane, window, origins)
        )

    def test_origin_subsets_and_batch_sizes(self):
        """Sharded / re-batched evaluation changes nothing."""
        engine = PackedBNN(_warmed_model("xnor", stem_stride=2))
        plane, window = _plane(), 32
        origins = [(8 * i, 8 * j) for i in range(5) for j in range(5)]
        plan = engine.plan_scan(plane, window, origins)
        full = plan.logits()
        np.testing.assert_array_equal(
            full, _reference(engine, plane, window, origins)
        )
        np.testing.assert_array_equal(full, plan.logits(batch_size=7))
        shard = origins[11:19]
        np.testing.assert_array_equal(
            plan.logits(shard), full[11:19]
        )

    def test_unseen_origin_builds_phase_lazily(self):
        engine = PackedBNN(_warmed_model("channelwise", stem_stride=2))
        plane, window = _plane(), 32
        plan = engine.plan_scan(plane, window, [(0, 0)])
        np.testing.assert_array_equal(
            plan.logits([(3, 5)]), _reference(engine, plane, window, [(3, 5)])
        )

    def test_scan_plane_one_shot(self):
        engine = PackedBNN(_warmed_model("xnor"))
        plane, window = _plane(64), 32
        origins = [(0, 0), (16, 16), (32, 32)]
        np.testing.assert_array_equal(
            engine.scan_plane(plane, window, origins),
            _reference(engine, plane, window, origins),
        )


class TestFallbackPath:
    def test_non_sequential_model_falls_back(self):
        """A bare head (no conv stem) still scans, via whole windows."""
        rng = np.random.default_rng(1)
        model = Sequential(GlobalAvgPool2D(), Dense(1, 2, rng=rng))
        engine = PackedBNN(model)
        assert engine._stem_spec is None
        plane, window = _plane(48), 16
        origins = [(0, 0), (5, 9), (32, 32)]
        plan = engine.plan_scan(plane, window, origins)
        assert not plan.uses_plane_stem
        np.testing.assert_array_equal(
            plan.logits(), _reference(engine, plane, window, origins)
        )

    def test_multichannel_plane_falls_back(self):
        engine = PackedBNN(_warmed_model("xnor"))
        plane3 = np.stack([_plane(48, seed=s) for s in range(3)])[None]
        plan = PlaneScanPlan(plane3, 16, [(0, 0)], engine._stem_spec,
                             engine._fn)
        assert not plan.uses_plane_stem


class TestValidation:
    def test_out_of_bounds_origin_raises(self):
        engine = PackedBNN(_warmed_model("none"))
        with pytest.raises(ValueError):
            engine.plan_scan(_plane(64), 32, [(40, 0)])
        with pytest.raises(ValueError):
            engine.plan_scan(_plane(64), 32, [(0, -1)])

    def test_bad_plane_shape_raises(self):
        engine = PackedBNN(_warmed_model("none"))
        with pytest.raises(ValueError):
            engine.plan_scan(np.zeros((2, 1, 64, 64)), 32, [(0, 0)])

    def test_empty_origins_empty_logits(self):
        engine = PackedBNN(_warmed_model("none"))
        plan = engine.plan_scan(_plane(64), 32, [])
        assert plan.logits().shape[0] == 0
