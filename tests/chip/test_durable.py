"""Durability contract of :class:`repro.chip.DurableChipScan`.

Kill a journaled scan anywhere — a tile boundary, mid-journal-write —
and resuming produces a heatmap bit-identical to an uninterrupted run;
transient faults recover within the retry bounds with a deterministic
backoff schedule; a persistent poison window is bisected down to a
one-window quarantine.
"""

import numpy as np
import pytest

from repro.binary.inference import PackedBNN
from repro.chip import (
    ChipScanner,
    DurableChipScan,
    JournalCorruptError,
    RetryPolicy,
    ScanPreemptedError,
    read_journal,
)
from repro.chip.tiling import TileSpec
from repro.litho.fullchip import synthesize_chip
from repro.models.bnn_resnet import build_bnn_resnet
from repro.serve import FaultInjector

SIZE = 4096
WINDOW = 512
STRIDE = 256
IMAGE = 16
# two windows per tile axis -> a 5x5 tile grid at this geometry
BUDGET = (2 * IMAGE) ** 2 * 8

FAST = RetryPolicy(max_retries=2, base_delay_s=0.0, max_delay_s=0.0,
                   retry_budget=32, seed=0)


class KilledScan(RuntimeError):
    """Simulated crash raised from the tile hook."""


@pytest.fixture(scope="module")
def engine():
    rng = np.random.default_rng(99)
    model = build_bnn_resnet((4, 8), scaling="xnor", seed=3)
    x = (rng.random((8, 1, IMAGE, IMAGE)) > 0.5) * 2.0 - 1.0
    model.forward(x, training=True)
    return PackedBNN(model)


@pytest.fixture(scope="module")
def layout():
    return synthesize_chip(SIZE, seed=11)


@pytest.fixture(scope="module")
def reference(engine, layout):
    return ChipScanner(engine, IMAGE).scan(
        layout, WINDOW, STRIDE, BUDGET
    ).heatmap.scores


def durable(engine, layout, journal, faults=None, **kwargs):
    kwargs.setdefault("policy", FAST)
    return DurableChipScan(
        ChipScanner(engine, IMAGE, faults=faults), layout,
        WINDOW, STRIDE, BUDGET, journal=journal, **kwargs
    )


class TestDurableScan:
    def test_uninterrupted_matches_plain_scan(
        self, engine, layout, reference, tmp_path
    ):
        path = tmp_path / "scan.journal"
        result = durable(engine, layout, path).run()
        np.testing.assert_array_equal(result.heatmap.scores, reference)
        stats = result.stats
        assert not stats["resumed"]
        assert stats["tiles_replayed"] == 0
        assert stats["tiles_scored"] == len(result.job.tiles)
        assert stats["quarantined_windows"] == ()
        assert len(read_journal(path).tiles) == len(result.job.tiles)

    def test_kill_and_resume_bit_identical(
        self, engine, layout, reference, tmp_path
    ):
        path = tmp_path / "scan.journal"

        def kill_after(n):
            seen = [0]

            def hook(_index):
                seen[0] += 1
                if seen[0] >= n:
                    raise KilledScan(f"killed after {seen[0]} tiles")
            return hook

        with pytest.raises(KilledScan):
            durable(engine, layout, path, tile_hook=kill_after(7)).run()
        assert len(read_journal(path).tiles) == 7
        result = durable(engine, layout, path, resume=True).run()
        np.testing.assert_array_equal(result.heatmap.scores, reference)
        stats = result.stats
        assert stats["resumed"]
        assert stats["tiles_replayed"] == 7
        assert (stats["tiles_replayed"] + stats["tiles_scored"]
                == len(result.job.tiles))

    def test_torn_journal_tail_resumes(
        self, engine, layout, reference, tmp_path
    ):
        path = tmp_path / "scan.journal"

        def hook(_index):
            raise KilledScan("killed after the first tile")

        with pytest.raises(KilledScan):
            durable(engine, layout, path, tile_hook=hook).run()
        # crash mid-append: the last record loses its tail bytes
        path.write_bytes(path.read_bytes()[:-7])
        result = durable(engine, layout, path, resume=True).run()
        np.testing.assert_array_equal(result.heatmap.scores, reference)
        assert result.stats["tiles_scored"] == len(result.job.tiles)

    def test_corrupt_journal_refused_on_resume(
        self, engine, layout, tmp_path
    ):
        path = tmp_path / "scan.journal"
        durable(engine, layout, path).run()
        data = bytearray(path.read_bytes())
        data[-40] ^= 0xFF  # inside the last record's score payload
        path.write_bytes(bytes(data))
        with pytest.raises(JournalCorruptError):
            durable(engine, layout, path, resume=True).run()


class TestRetry:
    def test_transient_faults_recover(
        self, engine, layout, reference, tmp_path
    ):
        faults = FaultInjector(seed=0)
        faults.add_error("engine", times=2)
        result = durable(
            engine, layout, tmp_path / "scan.journal", faults=faults
        ).run()
        np.testing.assert_array_equal(result.heatmap.scores, reference)
        assert result.stats["tile_retries"] == 2
        assert result.stats["quarantined_windows"] == ()

    def test_backoff_schedule_is_deterministic(
        self, engine, layout, tmp_path
    ):
        policy = RetryPolicy(max_retries=2, base_delay_s=0.05,
                             retry_budget=32, seed=5)
        schedules = []
        for run in range(2):
            # the first call fails in wave 0, its retry (call index
            # 25) fails in wave 1, the second retry succeeds -> two
            # backoff sleeps
            faults = FaultInjector(seed=0)
            faults.add_error("engine", on_calls=[0, 25])
            slept = []
            result = durable(
                engine, layout, tmp_path / f"run{run}.journal",
                faults=faults, policy=policy, sleep=slept.append,
            ).run()
            assert result.stats["tile_retries"] == 2
            schedules.append(slept)
        assert schedules[0] == schedules[1]
        assert schedules[0] == [policy.delay_s(1), policy.delay_s(2)]
        assert all(d > 0 for d in schedules[0])

    def test_permanent_errors_are_not_retried(
        self, engine, layout, tmp_path
    ):
        faults = FaultInjector(seed=0)
        faults.add_error("engine", times=1, error=ValueError("bad shape"))
        result = durable(
            engine, layout, tmp_path / "scan.journal", faults=faults
        ).run()
        # no retry spent: the tile went straight to bisection, whose
        # sub-tile scoring succeeded (the fault fired only once)
        assert result.stats["tile_retries"] == 0
        assert result.stats["quarantined_windows"] == ()
        assert result.heatmap.n_unscored == 0


class TestQuarantine:
    def test_poison_window_bisected_to_minimal_quarantine(
        self, engine, layout, reference, tmp_path
    ):
        poison = (5, 6)
        faults = FaultInjector(seed=0)
        faults.add_error("engine", match=lambda args: (
            isinstance(args[0], TileSpec)
            and args[0].contains_index(*poison)
        ))
        result = durable(
            engine, layout, tmp_path / "scan.journal", faults=faults
        ).run()
        scores = result.heatmap.scores
        assert result.stats["quarantined_windows"] == (poison,)
        assert np.isnan(scores[poison[1], poison[0]])
        assert result.heatmap.n_unscored == 1
        scored = ~np.isnan(scores)
        np.testing.assert_array_equal(scores[scored], reference[scored])

    def test_quarantine_survives_resume(
        self, engine, layout, tmp_path
    ):
        poison = (5, 6)

        def poison_faults():
            faults = FaultInjector(seed=0)
            faults.add_error("engine", match=lambda args: (
                isinstance(args[0], TileSpec)
                and args[0].contains_index(*poison)
            ))
            return faults

        path = tmp_path / "scan.journal"
        seen = [0]

        def hook(_index):
            seen[0] += 1
            if seen[0] >= 10:
                raise KilledScan("killed after 10 tiles")

        with pytest.raises(KilledScan):
            durable(engine, layout, path, faults=poison_faults(),
                    tile_hook=hook).run()
        result = durable(engine, layout, path, faults=poison_faults(),
                         resume=True).run()
        assert result.stats["quarantined_windows"] == (poison,)
        assert result.heatmap.n_unscored == 1


class TestPreemption:
    def test_preemption_flushes_resumable_journal(
        self, engine, layout, reference, tmp_path
    ):
        path = tmp_path / "scan.journal"
        scan = durable(engine, layout, path)

        def hook(_index):
            scan.request_preemption("test says stop")
        scan._tile_hook = hook
        with pytest.raises(ScanPreemptedError) as err:
            scan.run()
        assert err.value.journal == path
        assert 0 < err.value.completed < err.value.total
        # the flushed journal resumes to a bit-identical heatmap
        result = durable(engine, layout, path, resume=True).run()
        np.testing.assert_array_equal(result.heatmap.scores, reference)
        assert result.stats["tiles_replayed"] == err.value.completed


class TestParallelHook:
    def test_parallel_wave_matches_sequential(
        self, engine, layout, reference, tmp_path
    ):
        def parallel(tiles, score_fn):
            out = []
            for tile in tiles:
                try:
                    out.append(score_fn(tile))
                except Exception as exc:  # noqa: BLE001
                    out.append(exc)
            return out

        result = durable(
            engine, layout, tmp_path / "scan.journal"
        ).run(parallel=parallel)
        np.testing.assert_array_equal(result.heatmap.scores, reference)

    def test_short_parallel_result_is_an_error(
        self, engine, layout, tmp_path
    ):
        with pytest.raises(RuntimeError, match="parallel hook"):
            durable(
                engine, layout, tmp_path / "scan.journal"
            ).run(parallel=lambda tiles, fn: [])


class TestRetryPolicy:
    def test_delay_deterministic_and_capped(self):
        policy = RetryPolicy(base_delay_s=0.5, max_delay_s=1.0, seed=3)
        for attempt in (1, 2, 5):
            a = policy.delay_s(attempt, key=9)
            assert a == policy.delay_s(attempt, key=9)
            assert 0 < a <= policy.max_delay_s
        assert policy.delay_s(0) == 0.0
        # different keys jitter independently
        assert policy.delay_s(1, key=1) != policy.delay_s(1, key=2)

    def test_classification(self):
        policy = RetryPolicy()
        assert policy.is_transient(RuntimeError("worker died"))
        assert not policy.is_transient(ValueError("bad geometry"))

    def test_validation(self):
        with pytest.raises(ValueError, match="max_retries"):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError, match="retry_budget"):
            RetryPolicy(retry_budget=-1)
        with pytest.raises(ValueError, match="delays"):
            RetryPolicy(base_delay_s=-0.1)
