"""Dirty-region tracking and incremental re-scan equivalence."""

import numpy as np
import pytest

from repro.binary.inference import PackedBNN
from repro.chip import ChipScanner, DirtyRegionTracker
from repro.litho.fullchip import (
    LayoutEdit,
    apply_edits,
    synthesize_chip,
    synthesize_edit_trace,
)
from repro.litho.geometry import Rect
from repro.serve import PlaneCache

from .test_scanner import BUDGET, IMAGE, SIZE, STRIDE, WINDOW, warmed_model


@pytest.fixture(scope="module")
def engine():
    return PackedBNN(warmed_model())


@pytest.fixture(scope="module")
def layout():
    return synthesize_chip(SIZE, seed=11)


class TestDirtyWindows:
    def test_exact_overlap_set(self):
        steps = [0, 256, 512, 768]
        tracker = DirtyRegionTracker(steps, window=512)
        # x extent (600, 640) reaches windows at 256 and 512;
        # y extent (100, 140) reaches only the window at 0
        edits = [LayoutEdit("add", Rect(600, 100, 640, 140))]
        dirty = tracker.dirty_windows(edits)
        assert dirty == [(1, 0), (2, 0)]

    def test_touching_border_is_clean(self):
        steps = [0, 256, 512]
        tracker = DirtyRegionTracker(steps, window=256)
        # rect exactly on [256, 512): windows at 0 end at 256 -> clean
        dirty = tracker.dirty_windows(
            [LayoutEdit("add", Rect(256, 256, 512, 512))]
        )
        assert dirty == [(1, 1)]

    def test_move_dirties_both_positions(self):
        steps = [0, 256, 512]
        tracker = DirtyRegionTracker(steps, window=256)
        dirty = tracker.dirty_windows([
            LayoutEdit("move", Rect(0, 0, 64, 64),
                       to=Rect(300, 300, 364, 364)),
        ])
        assert (0, 0) in dirty and (1, 1) in dirty

    def test_dirty_fraction(self):
        steps = [0, 256, 512]
        tracker = DirtyRegionTracker(steps, window=256)
        edits = [LayoutEdit("add", Rect(0, 0, 64, 64))]
        assert tracker.dirty_fraction(edits) == pytest.approx(1 / 9)


class TestRescanEquivalence:
    def test_rescan_matches_scratch_bit_for_bit(self, engine, layout):
        scanner = ChipScanner(engine, IMAGE)
        baseline = scanner.scan(layout, WINDOW, STRIDE, BUDGET)
        edits = synthesize_edit_trace(layout, 5, seed=21)
        rescanned = scanner.rescan(baseline, edits)
        scratch = ChipScanner(engine, IMAGE).scan(
            apply_edits(layout, edits), WINDOW, STRIDE, BUDGET
        )
        assert rescanned.heatmap.equals(scratch.heatmap)

    def test_rescores_only_the_dirty_set(self, engine, layout):
        scanner = ChipScanner(engine, IMAGE)
        baseline = scanner.scan(layout, WINDOW, STRIDE, BUDGET)
        edits = synthesize_edit_trace(
            layout, 2, seed=22, region=Rect(0, 0, 1024, 1024)
        )
        tracker = DirtyRegionTracker(
            list(baseline.heatmap.steps), WINDOW
        )
        rescanned = scanner.rescan(baseline, edits)
        assert rescanned.rescored_windows == len(tracker.dirty_windows(edits))
        assert rescanned.rescored_windows < baseline.windows

    def test_chained_rescans(self, engine, layout):
        """Each re-scan builds on the previous result's state."""
        scanner = ChipScanner(engine, IMAGE)
        result = scanner.scan(layout, WINDOW, STRIDE, BUDGET)
        current = layout
        for seed in (31, 32, 33):
            edits = synthesize_edit_trace(current, 3, seed=seed)
            result = scanner.rescan(result, edits)
            current = apply_edits(current, edits)
        scratch = ChipScanner(engine, IMAGE).scan(
            current, WINDOW, STRIDE, BUDGET
        )
        assert result.heatmap.equals(scratch.heatmap)

    def test_noop_edit_list_rescores_nothing(self, engine, layout):
        scanner = ChipScanner(engine, IMAGE)
        baseline = scanner.scan(layout, WINDOW, STRIDE, BUDGET)
        rescanned = scanner.rescan(baseline, [])
        assert rescanned.rescored_windows == 0
        assert rescanned.heatmap.equals(baseline.heatmap)


class TestCachedRescan:
    def test_cache_reuse_and_region_invalidation(self, engine, layout):
        cache = PlaneCache(capacity=256)
        scanner = ChipScanner(engine, IMAGE, plane_cache=cache)
        baseline = scanner.scan(layout, WINDOW, STRIDE, BUDGET, token="s1")
        misses_after_scan = cache.misses
        assert misses_after_scan == baseline.tiles
        edits = synthesize_edit_trace(
            layout, 2, seed=23, region=Rect(0, 0, 1024, 1024)
        )
        rescanned = scanner.rescan(baseline, edits)
        # only the dirtied tiles were rebuilt
        rebuilt = cache.misses - misses_after_scan
        assert 0 < rebuilt < baseline.tiles
        scratch = ChipScanner(engine, IMAGE).scan(
            apply_edits(layout, edits), WINDOW, STRIDE, BUDGET
        )
        assert rescanned.heatmap.equals(scratch.heatmap)

    def test_cached_and_uncached_rescans_agree(self, engine, layout):
        edits = synthesize_edit_trace(layout, 4, seed=24)
        cached = ChipScanner(engine, IMAGE, plane_cache=PlaneCache(256))
        plain = ChipScanner(engine, IMAGE)
        a = cached.rescan(
            cached.scan(layout, WINDOW, STRIDE, BUDGET, token="s2"), edits
        )
        b = plain.rescan(plain.scan(layout, WINDOW, STRIDE, BUDGET), edits)
        assert a.heatmap.equals(b.heatmap)
