"""Tests for the bucketed spatial index."""

import numpy as np
import pytest

from repro.chip import RectIndex
from repro.litho.fullchip import LayoutEdit, apply_edits
from repro.litho.geometry import Clip, Rect


def random_layout(seed=0, size=4096, n=200):
    rng = np.random.default_rng(seed)
    clip = Clip(size)
    for _ in range(n):
        x0 = int(rng.integers(0, size - 64))
        y0 = int(rng.integers(0, size - 64))
        clip.add(Rect(x0, y0, x0 + int(rng.integers(8, 60)),
                      y0 + int(rng.integers(8, 60))))
    return clip


class TestQuery:
    def test_matches_brute_force_in_insertion_order(self):
        layout = random_layout(1)
        index = RectIndex(layout, bucket=512)
        for region in [Rect(0, 0, 1024, 1024), Rect(1000, 2000, 3000, 2600),
                       Rect(4000, 4000, 4096, 4096)]:
            expected = [r for r in layout.rects if r.intersects(region)]
            assert index.query(region) == expected

    def test_touching_border_is_not_a_match(self):
        layout = Clip(256, [Rect(0, 0, 64, 64)])
        index = RectIndex(layout, bucket=64)
        assert index.query(Rect(64, 0, 128, 64)) == []
        assert index.query(Rect(63, 0, 128, 64)) == [Rect(0, 0, 64, 64)]

    def test_rects_enumerates_layout_order(self):
        layout = random_layout(2)
        assert RectIndex(layout).rects() == list(layout.rects)


class TestApply:
    def test_edit_sequence_matches_apply_edits(self):
        layout = random_layout(3, n=50)
        rects = list(layout.rects)
        edits = [
            LayoutEdit("remove", rects[7]),
            LayoutEdit("add", Rect(10, 10, 40, 44)),
            LayoutEdit("move", rects[3], to=rects[3].shifted(16, 0)),
            LayoutEdit("add", Rect(10, 10, 40, 44)),  # duplicate geometry
            LayoutEdit("remove", Rect(10, 10, 40, 44)),
        ]
        index = RectIndex(layout, bucket=512)
        for edit in edits:
            index.apply(edit)
        assert index.rects() == list(apply_edits(layout, edits).rects)

    def test_remove_first_equal_with_duplicates(self):
        rect = Rect(0, 0, 32, 32)
        layout = Clip(256, [rect, Rect(100, 100, 130, 130), rect])
        index = RectIndex(layout, bucket=64)
        index.apply(LayoutEdit("remove", rect))
        # one copy survives, and it is the *later* insertion
        assert index.rects() == [Rect(100, 100, 130, 130), rect]
        assert len(index) == 2

    def test_remove_missing_raises(self):
        index = RectIndex(Clip(256, [Rect(0, 0, 8, 8)]))
        with pytest.raises(ValueError, match="not in index"):
            index.apply(LayoutEdit("remove", Rect(1, 1, 9, 9)))

    def test_query_after_edits_stays_consistent(self):
        layout = random_layout(4, n=80)
        index = RectIndex(layout, bucket=256)
        current = layout
        rng = np.random.default_rng(5)
        for _ in range(30):
            rects = list(current.rects)
            victim = rects[int(rng.integers(len(rects)))]
            edit = LayoutEdit("move", victim,
                              to=Rect(victim.x0, victim.y0,
                                      victim.x1 + 1, victim.y1 + 1))
            index.apply(edit)
            current = apply_edits(current, [edit])
        region = Rect(512, 512, 3584, 3584)
        expected = [r for r in current.rects if r.intersects(region)]
        assert index.query(region) == expected

    def test_validation(self):
        with pytest.raises(ValueError, match="bucket"):
            RectIndex(Clip(256), bucket=0)
