"""Framing, binding, and failure semantics of the scan journal.

The contract: every record is checksummed, a torn tail is recoverable
only when asked (``recover_tail=True``), a complete-but-corrupt record
is *always* refused with a typed error, and a journal binds to exactly
one (layout, grid, model-input) configuration.
"""

import numpy as np
import pytest

from repro.chip import (
    ChipScanner,
    JournalCorruptError,
    JournalError,
    JournalMismatchError,
    JournalTruncatedError,
    ScanJournal,
    TileRecord,
    journal_header,
    layout_fingerprint,
    read_journal,
    snapshot_journal,
)
from repro.litho.fullchip import synthesize_chip
from repro.litho.geometry import Clip, Rect

SIZE = 4096
WINDOW = 512
STRIDE = 256
IMAGE = 16
BUDGET = (2 * IMAGE) ** 2 * 8


@pytest.fixture(scope="module")
def layout():
    return synthesize_chip(SIZE, seed=11)


@pytest.fixture(scope="module")
def header(layout):
    class _NoEngine:
        pass

    job = ChipScanner(_NoEngine(), IMAGE).compile(
        layout, WINDOW, STRIDE, BUDGET
    )
    return journal_header(layout, job.grid, IMAGE)


def tile_scores(shape, seed=0):
    return np.random.default_rng(seed).normal(size=shape)


class TestRoundTrip:
    def test_records_replay_bit_identical(self, tmp_path, header):
        path = tmp_path / "scan.journal"
        blocks = {0: tile_scores((2, 2), 1), 3: tile_scores((2, 1), 2)}
        with ScanJournal.create(path, header) as journal:
            journal.append_tile(0, blocks[0])
            journal.append_tile(3, blocks[3], quarantined=[(4, 5)])
        contents = read_journal(path)
        assert contents.header == header
        assert not contents.recovered_tail
        assert set(contents.tiles) == {0, 3}
        for index, scores in blocks.items():
            np.testing.assert_array_equal(
                contents.tiles[index].scores, scores
            )
        assert contents.tiles[3].quarantined == ((4, 5),)

    def test_create_refuses_existing(self, tmp_path, header):
        path = tmp_path / "scan.journal"
        ScanJournal.create(path, header).close()
        with pytest.raises(JournalError, match="exists"):
            ScanJournal.create(path, header)

    def test_resume_missing_creates(self, tmp_path, header):
        path = tmp_path / "fresh.journal"
        journal, contents = ScanJournal.resume(path, header)
        journal.close()
        assert path.exists()
        assert contents.tiles == {}


class TestBinding:
    def test_resume_refuses_other_configuration(self, tmp_path, header):
        path = tmp_path / "scan.journal"
        ScanJournal.create(path, header).close()
        other = dict(header, window=WINDOW * 2)
        with pytest.raises(JournalMismatchError, match="window"):
            ScanJournal.resume(path, other)

    def test_fingerprint_tracks_geometry(self):
        a = Clip(1024, (Rect(0, 0, 64, 64),))
        moved = Clip(1024, (Rect(8, 0, 72, 64),))
        resized = Clip(2048, (Rect(0, 0, 64, 64),))
        assert layout_fingerprint(a) == layout_fingerprint(
            Clip(1024, (Rect(0, 0, 64, 64),))
        )
        assert layout_fingerprint(a) != layout_fingerprint(moved)
        assert layout_fingerprint(a) != layout_fingerprint(resized)


class TestFailureSemantics:
    def make_journal(self, tmp_path, header, n_tiles=3):
        path = tmp_path / "scan.journal"
        with ScanJournal.create(path, header) as journal:
            for index in range(n_tiles):
                journal.append_tile(index, tile_scores((2, 2), index))
        return path

    def test_torn_tail_strict_vs_recover(self, tmp_path, header):
        path = self.make_journal(tmp_path, header)
        whole = read_journal(path)
        path.write_bytes(path.read_bytes()[:-9])
        with pytest.raises(JournalTruncatedError):
            read_journal(path)
        recovered = read_journal(path, recover_tail=True)
        assert recovered.recovered_tail
        assert set(recovered.tiles) == {0, 1}
        assert recovered.valid_bytes < whole.valid_bytes

    def test_resume_truncates_torn_tail(self, tmp_path, header):
        path = self.make_journal(tmp_path, header)
        path.write_bytes(path.read_bytes()[:-9])
        journal, contents = ScanJournal.resume(path, header)
        with journal:
            journal.append_tile(2, tile_scores((2, 2), 7))
        # the torn bytes are gone: the file reads cleanly end to end
        healed = read_journal(path)
        assert set(healed.tiles) == {0, 1, 2}
        assert contents.recovered_tail

    def test_corrupt_record_always_refused(self, tmp_path, header):
        path = self.make_journal(tmp_path, header)
        data = bytearray(path.read_bytes())
        data[-40] ^= 0xFF  # inside the final record's payload
        path.write_bytes(bytes(data))
        with pytest.raises(JournalCorruptError):
            read_journal(path)
        with pytest.raises(JournalCorruptError):
            read_journal(path, recover_tail=True)
        with pytest.raises(JournalCorruptError):
            ScanJournal.resume(path, header)

    def test_garbage_file_refused(self, tmp_path, header):
        path = tmp_path / "garbage.journal"
        path.write_bytes(b"not a journal at all")
        with pytest.raises(JournalError):
            read_journal(path, recover_tail=True)


class TestSnapshot:
    def test_snapshot_replaces_atomically(self, tmp_path, header):
        path = tmp_path / "scan.journal"
        with ScanJournal.create(path, header) as journal:
            journal.append_tile(0, tile_scores((2, 2), 0))
        records = [
            TileRecord(index=0, scores=tile_scores((2, 2), 5)),
            TileRecord(index=1, scores=tile_scores((2, 2), 6)),
        ]
        snapshot_journal(path, header, records)
        contents = read_journal(path)
        assert set(contents.tiles) == {0, 1}
        np.testing.assert_array_equal(
            contents.tiles[0].scores, records[0].scores
        )
        assert not list(tmp_path.glob("*.tmp-*"))
