"""Bit-identity and memory bounds of the streaming chip scanner."""

import numpy as np
import pytest

from repro.binary.inference import FloatEngine, PackedBNN
from repro.chip import ChipScanner
from repro.features.downsample import to_network_input
from repro.litho.fullchip import synthesize_chip
from repro.litho.raster import rasterize_plane
from repro.models.bnn_resnet import build_bnn_resnet

SIZE = 4096
WINDOW = 512
STRIDE = 256
IMAGE = 16
SCALE = WINDOW // IMAGE
# budget forcing a multi-tile grid: two windows per tile axis
BUDGET = (2 * IMAGE) ** 2 * 8


def warmed_model(seed=3):
    rng = np.random.default_rng(99)
    model = build_bnn_resnet((4, 8), scaling="xnor", seed=seed)
    x = (rng.random((8, 1, IMAGE, IMAGE)) > 0.5) * 2.0 - 1.0
    model.forward(x, training=True)
    return model


@pytest.fixture(scope="module")
def layout():
    return synthesize_chip(SIZE, seed=11)


@pytest.fixture(scope="module", params=["packed", "float"])
def engine(request):
    cls = {"packed": PackedBNN, "float": FloatEngine}[request.param]
    return cls(warmed_model())


def monolithic_scores(engine, layout, steps):
    plane = to_network_input(
        rasterize_plane(layout, SCALE, "binary")[None]
    )
    origins = [(x // SCALE, y // SCALE) for y in steps for x in steps]
    logits = engine.scan_plane(plane, IMAGE, origins)
    n = len(steps)
    return (logits[:, 1] - logits[:, 0]).reshape(n, n)


class TestStreamedBitIdentity:
    def test_matches_monolithic_scan(self, engine, layout):
        scanner = ChipScanner(engine, IMAGE)
        result = scanner.scan(layout, WINDOW, STRIDE, BUDGET)
        assert result.tiles > 1
        reference = monolithic_scores(engine, layout, result.heatmap.steps)
        np.testing.assert_array_equal(result.heatmap.scores, reference)

    def test_budget_independent(self, engine, layout):
        """Any tile decomposition scores identically."""
        scanner = ChipScanner(engine, IMAGE)
        small = scanner.scan(layout, WINDOW, STRIDE, BUDGET)
        large = scanner.scan(layout, WINDOW, STRIDE, 2**28)
        assert small.tiles > large.tiles == 1
        assert small.heatmap.equals(large.heatmap)

    def test_snapped_stride_matches(self, engine, layout):
        """A stride that doesn't divide size-window snaps identically."""
        stride = 320  # (4096-512) % 320 != 0 -> snapped last origin
        scanner = ChipScanner(engine, IMAGE)
        result = scanner.scan(layout, WINDOW, stride, BUDGET)
        assert result.heatmap.steps[-1] == SIZE - WINDOW
        reference = monolithic_scores(engine, layout, result.heatmap.steps)
        np.testing.assert_array_equal(result.heatmap.scores, reference)


class TestMemoryBound:
    def test_peak_tile_bytes_tracked_and_bounded(self, engine, layout):
        result = ChipScanner(engine, IMAGE).scan(
            layout, WINDOW, STRIDE, BUDGET
        )
        assert 0 < result.peak_tile_bytes <= BUDGET
        # far below the monolithic plane footprint
        assert result.peak_tile_bytes < (SIZE // SCALE) ** 2 * 8

    def test_result_summary_reports_costs(self, engine, layout):
        result = ChipScanner(engine, IMAGE).scan(
            layout, WINDOW, STRIDE, BUDGET
        )
        summary = result.summary()
        assert summary["tiles"] == result.tiles
        assert summary["peak_tile_bytes"] == result.peak_tile_bytes
        assert summary["tile_budget"] == BUDGET
        assert summary["unscored"] == 0
        assert summary["rescored_windows"] is None


class TestValidation:
    def test_window_must_be_pixel_aligned(self, engine, layout):
        scanner = ChipScanner(engine, IMAGE)
        with pytest.raises(ValueError, match="multiple of the engine"):
            scanner.compile(layout, WINDOW + 1, STRIDE, BUDGET)

    def test_constructor_knobs(self, engine):
        with pytest.raises(ValueError):
            ChipScanner(engine, 0)
        with pytest.raises(ValueError):
            ChipScanner(engine, IMAGE, batch_size=0)


class TestHeatmap:
    def test_hits_match_score_threshold(self, engine, layout):
        result = ChipScanner(engine, IMAGE).scan(
            layout, WINDOW, STRIDE, BUDGET
        )
        heatmap = result.heatmap
        hits = heatmap.hits(0.0)
        assert len(hits) == int((heatmap.scores > 0.0).sum())
        for hit in hits:
            assert hit.x1 - hit.x0 == WINDOW
            assert hit.score > 0.0

    def test_npz_roundtrip(self, engine, layout, tmp_path):
        heatmap = ChipScanner(engine, IMAGE).scan(
            layout, WINDOW, STRIDE, BUDGET
        ).heatmap
        heatmap.save_npz(tmp_path / "h.npz")
        loaded = type(heatmap).load_npz(tmp_path / "h.npz")
        assert loaded.equals(heatmap)
