"""Tests for the tile decomposition of a full-chip sweep."""

import pytest

from repro.chip import origin_steps, plan_tiles
from repro.serve import window_origins


class TestOriginSteps:
    def test_matches_serving_layer_origins(self):
        for size, window, stride in [(1024, 128, 64), (1000, 128, 48),
                                     (512, 512, 64), (4096, 1024, 700)]:
            steps = origin_steps(size, window, stride)
            origins = window_origins(size, window, stride)
            assert [(x, y) for y in steps for x in steps] == origins

    def test_snaps_last_origin(self):
        # 1000 - 128 = 872, not a multiple of 48: last origin snaps
        steps = origin_steps(1000, 128, 48)
        assert steps[-1] == 872
        assert steps[-2] < 872

    def test_validation(self):
        with pytest.raises(ValueError):
            origin_steps(100, 128, 32)  # window > size
        with pytest.raises(ValueError):
            origin_steps(100, 50, 0)


class TestPlanTiles:
    def test_every_tile_within_budget(self):
        budget = (3 * 64) ** 2 * 8  # up to 3 windows per axis per tile
        grid = plan_tiles(4096, 512, 256, 8, budget)
        assert len(grid.tiles) > 1
        for tile in grid.tiles:
            assert grid.tile_bytes(tile) <= budget

    def test_tiles_partition_the_origin_grid(self):
        grid = plan_tiles(4096, 512, 192, 8, (2 * 64) ** 2 * 8)
        n = len(grid.steps)
        owners = {}
        for index, tile in enumerate(grid.tiles):
            for j in range(tile.iy0, tile.iy1):
                for i in range(tile.ix0, tile.ix1):
                    assert (i, j) not in owners
                    owners[(i, j)] = index
        assert len(owners) == n * n == grid.n_windows

    def test_tile_index_of_agrees_with_membership(self):
        grid = plan_tiles(4096, 512, 192, 8, (2 * 64) ** 2 * 8)
        for index, tile in enumerate(grid.tiles):
            assert grid.tile_index_of(tile.ix0, tile.iy0) == index
            assert grid.tile_of(tile.ix1 - 1, tile.iy1 - 1) is grid.tiles[
                grid.tile_index_of(tile.ix1 - 1, tile.iy1 - 1)]
        with pytest.raises(IndexError):
            grid.tile_index_of(len(grid.steps), 0)

    def test_region_covers_core_plus_halo(self):
        grid = plan_tiles(2048, 256, 128, 8, (2 * 32) ** 2 * 8)
        for tile in grid.tiles:
            # the region must reach the end of the last window
            assert tile.region.x0 == grid.steps[tile.ix0]
            assert tile.region.x1 == grid.steps[tile.ix1 - 1] + grid.window
            assert tile.region.y0 == grid.steps[tile.iy0]
            assert tile.region.y1 == grid.steps[tile.iy1 - 1] + grid.window

    def test_regions_land_on_pixel_edges(self):
        grid = plan_tiles(4000, 500, 250, 5, (4 * 100) ** 2 * 8)
        for tile in grid.tiles:
            for edge in (tile.region.x0, tile.region.x1,
                         tile.region.y0, tile.region.y1):
                assert edge % grid.scale == 0

    def test_single_tile_when_budget_is_large(self):
        grid = plan_tiles(2048, 256, 128, 8, 2**30)
        assert len(grid.tiles) == 1
        tile = grid.tiles[0]
        assert tile.n_origins == grid.n_windows

    def test_budget_below_one_window_raises(self):
        with pytest.raises(ValueError, match="cannot hold one"):
            plan_tiles(2048, 256, 128, 8, (256 // 8) ** 2 * 8 - 1)

    def test_misaligned_scale_raises(self):
        with pytest.raises(ValueError, match="not a multiple"):
            plan_tiles(2048, 250, 128, 8, 2**20)  # window % scale != 0
        with pytest.raises(ValueError, match="not a multiple"):
            plan_tiles(2047, 256, 128, 8, 2**20)  # size % scale != 0
        with pytest.raises(ValueError, match="not a multiple"):
            plan_tiles(2048, 256, 100, 8, 2**20)  # stride % scale != 0

    def test_non_uniform_snapped_step_stays_bounded(self):
        # 4096 - 512 = 3584, stride 768: steps 0..3072 then snap 3584;
        # the last run's span includes the irregular gap
        budget = (2 * 64) ** 2 * 8
        grid = plan_tiles(4096, 512, 768, 8, budget)
        assert grid.steps[-1] == 3584
        for tile in grid.tiles:
            assert grid.tile_bytes(tile) <= budget
