"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for reproducible tests."""
    return np.random.default_rng(12345)


def make_separable_images(
    n_per_class: int,
    size: int = 16,
    rng: np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Tiny planted-signal image dataset for fast detector tests.

    Class 1 images carry a dense filled block in a random position;
    class 0 images carry sparse random speckle.  Learnable by every
    detector within a couple of epochs, without running lithography.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    images = np.zeros((2 * n_per_class, 1, size, size), dtype=np.float32)
    labels = np.zeros(2 * n_per_class, dtype=np.int64)
    for i in range(n_per_class):
        # class 0: sparse speckle
        speckle = rng.random((size, size)) < 0.08
        images[i, 0] = speckle
    for i in range(n_per_class, 2 * n_per_class):
        block = size // 2
        y = int(rng.integers(0, size - block + 1))
        x = int(rng.integers(0, size - block + 1))
        images[i, 0, y : y + block, x : x + block] = 1.0
        labels[i] = 1
    order = rng.permutation(2 * n_per_class)
    return images[order], labels[order]


def finite_difference(f, x: np.ndarray, grad_out: np.ndarray,
                      eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of ``sum(f(x) * grad_out)`` w.r.t. x."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = float((f(x) * grad_out).sum())
        flat[i] = orig - eps
        lo = float((f(x) * grad_out).sum())
        flat[i] = orig
        gflat[i] = (hi - lo) / (2 * eps)
    return grad
