"""Tests for biased-learning targets (Section 3.4.3)."""

import numpy as np
import pytest

from repro.detect import biased_targets


class TestBiasedTargets:
    def test_paper_values(self):
        """eps = 0.2: NHS -> [0.8, 0.2], HS stays [0, 1]."""
        targets = biased_targets(np.array([0, 1]), epsilon=0.2)
        np.testing.assert_allclose(targets, [[0.8, 0.2], [0.0, 1.0]])

    def test_zero_epsilon_is_one_hot(self):
        targets = biased_targets(np.array([0, 1, 0]), epsilon=0.0)
        np.testing.assert_allclose(targets, [[1, 0], [0, 1], [1, 0]])

    def test_rows_are_distributions(self, rng):
        labels = rng.integers(0, 2, size=50)
        targets = biased_targets(labels, epsilon=0.3)
        np.testing.assert_allclose(targets.sum(axis=1), 1.0)
        assert (targets >= 0).all()

    def test_hotspot_targets_never_softened(self, rng):
        labels = np.ones(5, dtype=int)
        targets = biased_targets(labels, epsilon=0.4)
        np.testing.assert_allclose(targets, [[0.0, 1.0]] * 5)

    def test_invalid_epsilon_raises(self):
        with pytest.raises(ValueError):
            biased_targets(np.array([0]), epsilon=1.0)
        with pytest.raises(ValueError):
            biased_targets(np.array([0]), epsilon=-0.1)
