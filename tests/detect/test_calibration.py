"""Tests for the BNN detector's operating-point calibration."""

import numpy as np
import pytest

from repro.detect import BNNDetector
from repro.nn import ArrayDataset

from ..conftest import make_separable_images


@pytest.fixture(scope="module")
def trained_pair():
    rng = np.random.default_rng(0)
    train_images, train_labels = make_separable_images(40, size=16, rng=rng)
    test_images, test_labels = make_separable_images(20, size=16, rng=rng)
    return (
        ArrayDataset(train_images, train_labels),
        ArrayDataset(test_images, test_labels),
    )


class TestTargetFARate:
    def test_calibration_sets_decision_bias(self, trained_pair):
        train, _ = trained_pair
        detector = BNNDetector(channels=(4, 8), epochs=3, finetune_epochs=0,
                               batch_size=16, seed=0, stem_stride=1,
                               target_fa_rate=0.2)
        detector.fit(train, np.random.default_rng(1))
        assert detector.decision_bias != 0.0

    def test_no_calibration_keeps_argmax(self, trained_pair):
        train, _ = trained_pair
        detector = BNNDetector(channels=(4, 8), epochs=3, finetune_epochs=0,
                               batch_size=16, seed=0, stem_stride=1)
        detector.fit(train, np.random.default_rng(1))
        assert detector.decision_bias == 0.0

    def test_stricter_target_flags_fewer(self, trained_pair):
        train, test = trained_pair
        flags = {}
        for rate in (0.05, 0.5):
            detector = BNNDetector(channels=(4, 8), epochs=3,
                                   finetune_epochs=0, batch_size=16, seed=0,
                                   stem_stride=1, target_fa_rate=rate)
            detector.fit(train, np.random.default_rng(1))
            flags[rate] = int(detector.predict(test.images).sum())
        assert flags[0.05] <= flags[0.5]

    def test_decision_bias_shifts_predictions(self, trained_pair):
        train, test = trained_pair
        detector = BNNDetector(channels=(4, 8), epochs=3, finetune_epochs=0,
                               batch_size=16, seed=0, stem_stride=1)
        detector.fit(train, np.random.default_rng(1))
        argmax_flags = int(detector.predict(test.images).sum())
        detector.decision_bias = 1e9
        assert detector.predict(test.images).sum() == 0
        detector.decision_bias = -1e9
        assert detector.predict(test.images).sum() == len(test)
        detector.decision_bias = 0.0
        assert int(detector.predict(test.images).sum()) == argmax_flags

    def test_refit_resets_bias(self, trained_pair):
        train, _ = trained_pair
        detector = BNNDetector(channels=(4,), epochs=1, finetune_epochs=0,
                               batch_size=16, seed=0, stem_stride=1)
        detector.fit(train, np.random.default_rng(1))
        detector.decision_bias = 5.0
        detector.fit(train, np.random.default_rng(1))
        assert detector.decision_bias == 0.0
