"""Detector-level tests on a fast planted-signal dataset.

These tests verify the detector *protocol* (fit / predict / evaluate)
and that each method learns an easy signal quickly; the lithography
benchmark integration lives in tests/integration.
"""

import numpy as np
import pytest

from repro.detect import (
    BNNDetector,
    DAC17Detector,
    ICCAD16Detector,
    SPIE15Detector,
    stages_for_image_size,
)
from repro.nn import ArrayDataset

from ..conftest import make_separable_images


@pytest.fixture(scope="module")
def planted():
    rng = np.random.default_rng(0)
    train_images, train_labels = make_separable_images(30, size=16, rng=rng)
    test_images, test_labels = make_separable_images(15, size=16, rng=rng)
    return (
        ArrayDataset(train_images, train_labels),
        ArrayDataset(test_images, test_labels),
    )


def fast_detectors():
    return [
        SPIE15Detector(grid=4, n_estimators=10, max_depth=2),
        ICCAD16Detector(n_selected=32, epochs=5),
        DAC17Detector(block=2, coefficients=4, stage_widths=(4, 8),
                      epochs=4, finetune_epochs=1, seed=0),
        BNNDetector(channels=(4, 8), epochs=4, finetune_epochs=1,
                    batch_size=16, seed=0, stem_stride=1),
    ]


@pytest.mark.parametrize("detector", fast_detectors(),
                         ids=lambda d: type(d).__name__)
class TestDetectorProtocol:
    def test_learns_planted_signal(self, planted, detector):
        train, test = planted
        rng = np.random.default_rng(1)
        metrics = detector.fit_evaluate(train, test, rng)
        assert metrics.accuracy > 0.6
        assert metrics.confusion.total == len(test)

    def test_predict_shape_and_dtype(self, planted, detector):
        train, test = planted
        predictions = detector.predict(test.images)
        assert predictions.shape == (len(test),)
        assert set(np.unique(predictions)) <= {0, 1}


class TestBNNSpecifics:
    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            BNNDetector().predict(np.zeros((1, 1, 16, 16)))

    def test_packed_and_sim_predictions_agree(self, planted):
        train, test = planted
        detector = BNNDetector(channels=(4, 8), epochs=3, finetune_epochs=0,
                               batch_size=16, seed=0, packed=True,
                               stem_stride=1)
        detector.fit(train, np.random.default_rng(2))
        packed = detector.predict(test.images)
        detector.engine = None  # fall back to the float simulation
        sim = detector.predict(test.images)
        np.testing.assert_array_equal(packed, sim)

    def test_stages_for_image_size(self):
        assert stages_for_image_size(128) == 5   # the paper's layout
        assert stages_for_image_size(64) == 4
        assert stages_for_image_size(32) == 3
        assert stages_for_image_size(64, stem_stride=2) == 3
        assert stages_for_image_size(8) == 2     # clamped floor

    def test_unbalanced_mode(self, planted):
        train, test = planted
        detector = BNNDetector(channels=(4,), epochs=2, finetune_epochs=0,
                               balance=False, batch_size=16, seed=0,
                               stem_stride=1)
        detector.fit(train, np.random.default_rng(3))
        assert detector.predict(test.images).shape == (len(test),)


class TestDAC17Specifics:
    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            DAC17Detector().predict(np.zeros((1, 1, 16, 16)))

    def test_incompatible_block_raises(self, planted):
        train, _ = planted
        with pytest.raises(ValueError):
            DAC17Detector(block=5).fit(train, np.random.default_rng(0))


class TestBaselineSpecifics:
    def test_spie_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            SPIE15Detector().predict(np.zeros((1, 1, 16, 16)))

    def test_iccad_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            ICCAD16Detector().predict(np.zeros((1, 1, 16, 16)))

    def test_iccad_threshold_monotone_in_flags(self, planted):
        train, test = planted
        rng = np.random.default_rng(4)
        loose = ICCAD16Detector(n_selected=32, epochs=5, threshold=0.1)
        loose.fit(train, rng)
        flags_loose = loose.predict(test.images).sum()
        loose.threshold = 0.9
        flags_strict = loose.predict(test.images).sum()
        assert flags_loose >= flags_strict


class TestEvaluateTiming:
    def test_metrics_record_times(self, planted):
        train, test = planted
        detector = SPIE15Detector(grid=4, n_estimators=5)
        metrics = detector.fit_evaluate(train, test, np.random.default_rng(5))
        assert metrics.train_time_s > 0.0
        assert metrics.eval_time_s > 0.0
        assert metrics.odst >= metrics.eval_time_s
