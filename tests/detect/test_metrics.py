"""Tests for the contest metrics (Table 1, Eq. 1-3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detect import ConfusionMatrix, DetectionMetrics


class TestConfusionMatrix:
    def test_from_predictions(self):
        predicted = np.array([1, 1, 0, 0, 1])
        actual = np.array([1, 0, 0, 1, 1])
        cm = ConfusionMatrix.from_predictions(predicted, actual)
        assert (cm.tp, cm.fp, cm.tn, cm.fn) == (2, 1, 1, 1)

    def test_accuracy_is_hotspot_recall(self):
        """Definition 2.1: accuracy = TP / (TP + FN), not overall accuracy."""
        cm = ConfusionMatrix(tp=8, fp=100, tn=0, fn=2)
        assert cm.accuracy == pytest.approx(0.8)

    def test_false_alarm_is_fp_count(self):
        cm = ConfusionMatrix(tp=0, fp=37, tn=5, fn=0)
        assert cm.false_alarm == 37

    def test_no_positives_zero_accuracy(self):
        cm = ConfusionMatrix(tp=0, fp=3, tn=5, fn=0)
        assert cm.accuracy == 0.0

    def test_precision(self):
        cm = ConfusionMatrix(tp=3, fp=1, tn=0, fn=0)
        assert cm.precision == pytest.approx(0.75)
        assert ConfusionMatrix(0, 0, 4, 4).precision == 0.0

    def test_odst_eq3(self):
        """Eq. 3 with t_ls = 10: every flagged clip is re-simulated."""
        cm = ConfusionMatrix(tp=5, fp=3, tn=10, fn=2)
        assert cm.odst(runtime_s=7.0) == pytest.approx((5 + 3) * 10.0 + 7.0)

    def test_odst_custom_litho_time(self):
        cm = ConfusionMatrix(tp=1, fp=1, tn=0, fn=0)
        assert cm.odst(0.0, litho_seconds=2.5) == pytest.approx(5.0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            ConfusionMatrix.from_predictions(np.zeros(3), np.zeros(4))


class TestDetectionMetrics:
    def test_row_format(self):
        cm = ConfusionMatrix(tp=9, fp=4, tn=80, fn=1)
        metrics = DetectionMetrics("demo", cm, train_time_s=1.0, eval_time_s=0.5)
        row = metrics.row()
        assert row["Method"] == "demo"
        assert row["FA#"] == 4
        assert row["Accu (%)"] == 90.0
        assert row["ODST (s)"] == pytest.approx((9 + 4) * 10 + 0.5, abs=0.1)

    def test_properties_delegate(self):
        cm = ConfusionMatrix(tp=1, fp=2, tn=3, fn=4)
        metrics = DetectionMetrics("d", cm, 0.0, 1.0)
        assert metrics.false_alarm == 2
        assert metrics.accuracy == pytest.approx(0.2)


@settings(max_examples=50, deadline=None)
@given(
    n=st.integers(1, 200),
    seed=st.integers(0, 9999),
)
def test_confusion_identities_property(n, seed):
    """Property: TP+FN = #hotspots, FP+TN = #non-hotspots, and the four
    cells partition the dataset (Table 1)."""
    rng = np.random.default_rng(seed)
    predicted = rng.integers(0, 2, size=n)
    actual = rng.integers(0, 2, size=n)
    cm = ConfusionMatrix.from_predictions(predicted, actual)
    assert cm.tp + cm.fn == int(actual.sum())
    assert cm.fp + cm.tn == int(n - actual.sum())
    assert cm.total == n
    assert cm.odst(0.0) == 10.0 * predicted.sum()
