"""Tests for the pattern matcher and SVM detectors."""

import numpy as np
import pytest

from repro.detect import PatternMatchDetector, SVMDetector
from repro.nn import ArrayDataset

from ..conftest import make_separable_images


@pytest.fixture(scope="module")
def planted():
    rng = np.random.default_rng(0)
    train_images, train_labels = make_separable_images(25, size=16, rng=rng)
    test_images, test_labels = make_separable_images(12, size=16, rng=rng)
    return (
        ArrayDataset(train_images, train_labels),
        ArrayDataset(test_images, test_labels),
    )


class TestPatternMatcher:
    def test_exact_repeats_always_flagged(self, planted):
        train, _ = planted
        detector = PatternMatchDetector(max_distance_fraction=0.0)
        detector.fit(train, np.random.default_rng(0))
        hotspots = train.images[train.labels == 1]
        np.testing.assert_array_equal(
            detector.predict(hotspots), np.ones(len(hotspots), dtype=np.int64)
        )

    def test_flipped_repeats_flagged(self, planted):
        train, _ = planted
        detector = PatternMatchDetector(max_distance_fraction=0.0,
                                        include_flips=True)
        detector.fit(train, np.random.default_rng(0))
        flipped = train.images[train.labels == 1][:, :, :, ::-1]
        assert detector.predict(flipped).all()

    def test_novel_pattern_type_missed(self, planted):
        """The Section 1 limitation: unseen pattern families score zero."""
        train, _ = planted
        detector = PatternMatchDetector(max_distance_fraction=0.02)
        detector.fit(train, np.random.default_rng(0))
        # a pattern type absent from training: thin full-width stripes
        novel = np.zeros((6, 1, 16, 16), dtype=np.float32)
        novel[:, :, ::4, :] = 1.0
        assert detector.predict(novel).sum() == 0

    def test_library_deduplicated(self, planted):
        train, _ = planted
        detector = PatternMatchDetector()
        detector.fit(train, np.random.default_rng(0))
        assert 0 < detector.library_size <= 4 * int(train.labels.sum())

    def test_no_hotspots_raises(self):
        images = np.zeros((4, 1, 16, 16), dtype=np.float32)
        dataset = ArrayDataset(images, np.zeros(4, dtype=np.int64))
        with pytest.raises(ValueError):
            PatternMatchDetector().fit(dataset, np.random.default_rng(0))

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            PatternMatchDetector().predict(np.zeros((1, 1, 16, 16)))

    def test_invalid_fraction_raises(self):
        with pytest.raises(ValueError):
            PatternMatchDetector(max_distance_fraction=1.0)

    def test_tolerance_widens_matching(self, planted):
        train, test = planted
        strict = PatternMatchDetector(max_distance_fraction=0.0)
        loose = PatternMatchDetector(max_distance_fraction=0.3)
        strict.fit(train, np.random.default_rng(0))
        loose.fit(train, np.random.default_rng(0))
        assert loose.predict(test.images).sum() >= (
            strict.predict(test.images).sum()
        )


class TestSVMDetector:
    @pytest.mark.parametrize("kernel", ["linear", "rbf"])
    def test_learns_planted_signal(self, planted, kernel):
        train, test = planted
        detector = SVMDetector(kernel=kernel, grid=4)
        metrics = detector.fit_evaluate(train, test, np.random.default_rng(1))
        assert metrics.accuracy > 0.6

    def test_invalid_kernel_raises(self):
        with pytest.raises(ValueError):
            SVMDetector(kernel="laplace")

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            SVMDetector().predict(np.zeros((1, 1, 16, 16)))
