"""Tests for ROC analysis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detect import RocCurve, auc, roc_curve


class TestRocCurve:
    def test_perfect_separation(self):
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        labels = np.array([1, 1, 0, 0])
        curve = roc_curve(scores, labels)
        assert auc(curve) == pytest.approx(1.0)
        assert curve.recall_at_fa_rate(0.0) == 1.0

    def test_inverted_scores(self):
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        labels = np.array([1, 1, 0, 0])
        assert auc(roc_curve(scores, labels)) == pytest.approx(0.0)

    def test_random_scores_auc_half(self, rng):
        scores = rng.normal(size=4000)
        labels = rng.integers(0, 2, size=4000)
        assert auc(roc_curve(scores, labels)) == pytest.approx(0.5, abs=0.05)

    def test_curve_starts_at_origin_ends_at_one(self, rng):
        scores = rng.normal(size=50)
        labels = np.array([0, 1] * 25)
        curve = roc_curve(scores, labels)
        assert curve.fa_rate[0] == 0.0 and curve.recall[0] == 0.0
        assert curve.fa_rate[-1] == 1.0 and curve.recall[-1] == 1.0

    def test_monotone(self, rng):
        scores = rng.normal(size=60)
        labels = rng.integers(0, 2, size=60)
        curve = roc_curve(scores, labels)
        assert (np.diff(curve.fa_rate) >= 0).all()
        assert (np.diff(curve.recall) >= 0).all()

    def test_threshold_for_fa_rate(self):
        scores = np.array([3.0, 2.0, 1.0, 0.0])
        labels = np.array([1, 0, 1, 0])
        curve = roc_curve(scores, labels)
        tau = curve.threshold_for_fa_rate(0.0)
        assert ((scores > tau) & (labels == 0)).sum() == 0

    def test_single_class_raises(self):
        with pytest.raises(ValueError):
            roc_curve(np.array([1.0, 2.0]), np.array([1, 1]))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            roc_curve(np.zeros(3), np.zeros(4))

    def test_tied_scores_collapsed(self):
        scores = np.array([0.5, 0.5, 0.5, 0.5])
        labels = np.array([1, 0, 1, 0])
        curve = roc_curve(scores, labels)
        # one +inf point and one point for the single distinct score
        assert curve.thresholds.size == 2


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 2000), n=st.integers(4, 80))
def test_auc_in_unit_interval_property(seed, n):
    rng = np.random.default_rng(seed)
    labels = np.concatenate([[0, 1], rng.integers(0, 2, size=n - 2)])
    scores = rng.normal(size=n)
    value = auc(roc_curve(scores, labels))
    assert -1e-9 <= value <= 1.0 + 1e-9


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2000), shift=st.floats(0.5, 4.0))
def test_auc_improves_with_separation_property(seed, shift):
    """Property: shifting positives upward never lowers AUC.

    AUC is P(score+ > score-), so raising every positive score can only
    flip pairwise comparisons in the positives' favour.  (The stronger
    claim "AUC > 0.5" is false for small shifts — an unlucky noise draw
    can leave the shifted sample below chance.)
    """
    rng = np.random.default_rng(seed)
    labels = np.array([0] * 40 + [1] * 40)
    scores = rng.normal(size=80)
    base = auc(roc_curve(scores, labels))
    scores[labels == 1] += shift
    assert auc(roc_curve(scores, labels)) >= base - 1e-9
