"""Edge-case tests for :func:`stages_for_image_size`.

The stage count drives both model construction and plane-scan window
geometry, so its clamping and rounding behaviour is load-bearing: a
wrong count either builds a network whose global pool sees a degenerate
map or silently changes the paper's architecture at 128x128.
"""

import pytest

from repro.detect.bnn_detector import stages_for_image_size


class TestPaperGeometry:
    def test_paper_128px_gives_five_stages(self):
        assert stages_for_image_size(128) == 5

    def test_each_halving_drops_one_stage(self):
        assert stages_for_image_size(64) == 4
        assert stages_for_image_size(32) == 3
        assert stages_for_image_size(16) == 2


class TestStemStride:
    def test_downsampling_stem_absorbs_one_stage(self):
        # a stride-2 stem already halves the map once, so one fewer
        # stride-2 residual stage reaches the same 4x4 output
        assert stages_for_image_size(128, stem_stride=2) == 4
        assert stages_for_image_size(64, stem_stride=2) == 3

    def test_stem_stride_one_is_default(self):
        for size in (16, 32, 64, 128):
            assert stages_for_image_size(size) == stages_for_image_size(
                size, stem_stride=1
            )

    def test_any_stride_above_one_costs_exactly_one_stage(self):
        # the formula treats stride 4 like stride 2 (one absorbed
        # halving); documents the current contract
        assert stages_for_image_size(128, stem_stride=4) == \
            stages_for_image_size(128, stem_stride=2)


class TestClamping:
    def test_lower_clamp_at_two_stages(self):
        # tiny inputs still get a two-stage network
        assert stages_for_image_size(8) == 2
        assert stages_for_image_size(4) == 2
        assert stages_for_image_size(16, stem_stride=2) == 2

    def test_upper_clamp_at_five_stages(self):
        # huge inputs never exceed the paper's five stages
        assert stages_for_image_size(256) == 5
        assert stages_for_image_size(1024) == 5
        assert stages_for_image_size(512, stem_stride=2) == 5


class TestNonPowerOfTwo:
    def test_rounds_down_to_enclosing_power_of_two(self):
        # log2 truncation: 100px behaves like 64px, 127px like 64px,
        # 129px like 128px
        assert stages_for_image_size(100) == stages_for_image_size(64)
        assert stages_for_image_size(127) == stages_for_image_size(64)
        assert stages_for_image_size(129) == stages_for_image_size(128)

    @pytest.mark.parametrize("size", [24, 48, 96, 192])
    def test_returns_int_within_bounds(self, size):
        stages = stages_for_image_size(size)
        assert isinstance(stages, int)
        assert 2 <= stages <= 5
