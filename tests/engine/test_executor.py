"""Tests for the executor: timing hooks, buffer ownership, in-place kernels."""

import numpy as np
import pytest

from repro.engine import Executor, Kernel, OpTimings, get_backend, lower
from repro.engine.ir import ActivationOp
from repro.models import bnn_resnet8


@pytest.fixture
def rng():
    return np.random.default_rng(1)


def _warm_model(rng, **kwargs):
    model = bnn_resnet8(seed=0, base_width=4, **kwargs)
    model.forward(rng.normal(size=(4, 1, 16, 16)), training=True)
    return model


class TestTimings:
    def test_rows_follow_program_order(self, rng):
        model = _warm_model(rng)
        program = lower(model)
        timings = OpTimings()
        executor = get_backend("packed").compile(program, timings)
        executor.run(rng.normal(size=(2, 1, 16, 16)))
        rows = timings.snapshot()
        names = [row["op"] for row in rows]
        walked = [node.name for node in program.walk()]
        # registration order is the program pre-order, minus untimed ops
        assert names == [name for name in walked if name in set(names)]
        assert "0.conv" in names

    def test_calls_and_totals_accumulate(self, rng):
        model = _warm_model(rng)
        timings = OpTimings()
        executor = get_backend("packed").compile(lower(model), timings)
        x = rng.normal(size=(2, 1, 16, 16))
        executor.run(x.copy())
        executor.run(x.copy())
        for row in timings.snapshot():
            assert row["calls"] == 2
            assert row["total_ms"] >= 0.0
            assert row["mean_ms"] == pytest.approx(row["total_ms"] / 2)

    def test_reset_keeps_registration(self, rng):
        model = _warm_model(rng)
        timings = OpTimings()
        executor = get_backend("packed").compile(lower(model), timings)
        executor.run(rng.normal(size=(2, 1, 16, 16)))
        timings.reset()
        rows = timings.snapshot()
        assert rows and all(row["calls"] == 0 for row in rows)

    def test_residual_branch_ops_are_timed(self, rng):
        model = _warm_model(rng)
        timings = OpTimings()
        executor = get_backend("packed").compile(lower(model), timings)
        executor.run(rng.normal(size=(2, 1, 16, 16)))
        names = [row["op"] for row in timings.snapshot()]
        assert any(".main." in name for name in names)
        assert any(".shortcut." in name for name in names)


class TestOwnership:
    def test_caller_input_never_mutated(self, rng):
        model = _warm_model(rng)
        executor = get_backend("packed").compile(lower(model))
        x = rng.normal(size=(2, 1, 16, 16))
        keep = x.copy()
        executor.run(x)
        np.testing.assert_array_equal(x, keep)

    def test_inplace_matches_out_of_place(self, rng):
        # an owned buffer may be updated in place by pointwise kernels;
        # the result must be bit-identical to the out-of-place path
        model = _warm_model(rng)
        executor = get_backend("packed").compile(lower(model))
        x = rng.normal(size=(3, 1, 16, 16))
        owned = executor.run(x.copy(), owned=True)
        borrowed = executor.run(x.copy(), owned=False)
        assert owned.tobytes() == borrowed.tobytes()

    def test_passthrough_kernel_does_not_claim_ownership(self):
        node = ActivationOp(name="id", kind="identity")
        seen = []

        def spy(x):
            seen.append("out_of_place")
            return x * 2.0

        def spy_inplace(x):
            seen.append("inplace")
            x *= 2.0
            return x

        kernels = [
            Kernel(node=node, fn=lambda x: x, passthrough=True),
            Kernel(node=node, fn=spy, inplace_fn=spy_inplace),
        ]
        executor = Executor(kernels, OpTimings())
        x = np.ones(4)
        out = executor.run(x, owned=False)
        # the identity passthrough must not mark the borrowed buffer
        # owned, so the doubling kernel has to copy
        assert seen == ["out_of_place"]
        np.testing.assert_array_equal(x, np.ones(4))
        np.testing.assert_array_equal(out, np.full(4, 2.0))

    def test_owned_buffer_uses_inplace_kernels(self):
        node = ActivationOp(name="dbl", kind="relu")
        seen = []

        def fn(x):
            seen.append("out_of_place")
            return x * 2.0

        def inplace_fn(x):
            seen.append("inplace")
            x *= 2.0
            return x

        executor = Executor([Kernel(node=node, fn=fn, inplace_fn=inplace_fn)],
                            OpTimings())
        executor.run(np.ones(4), owned=True)
        assert seen == ["inplace"]

    def test_untimed_kernel_absent_from_snapshot(self):
        node = ActivationOp(name="quiet", kind="identity")
        timings = OpTimings()
        executor = Executor(
            [Kernel(node=node, fn=lambda x: x + 1.0, timed=False)], timings
        )
        executor.run(np.zeros(2))
        assert timings.snapshot() == []


class TestEngineSurface:
    def test_engine_exposes_op_timings(self, rng):
        from repro.binary import PackedBNN

        model = _warm_model(rng)
        engine = PackedBNN(model)
        engine.predict_logits(rng.normal(size=(2, 1, 16, 16)))
        rows = engine.op_timings()
        assert rows and all(row["calls"] >= 1 for row in rows)
        engine.reset_op_timings()
        assert all(row["calls"] == 0 for row in engine.op_timings())
