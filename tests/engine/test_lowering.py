"""Tests for the lowering pass: module trees -> typed IR programs."""

import numpy as np
import pytest

from repro.binary import BinaryConv2D, BinaryDense
from repro.engine import (
    ActivationOp,
    BatchNormAffine,
    BinaryConvOp,
    BinaryDenseOp,
    DenseOp,
    LoweringError,
    PoolOp,
    ResidualOp,
    describe,
    find_plane_stem,
    infer_shapes,
    lower,
)
from repro.models import bnn_resnet8
from repro.nn import (
    BatchNorm2D,
    Dense,
    Dropout,
    GlobalAvgPool2D,
    Module,
    ReLU,
    Sequential,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestLower:
    def test_resnet_structure_is_flattened(self):
        model = bnn_resnet8(seed=0, base_width=4)
        program = lower(model)
        # stem BNNConvBlock flattens to [BatchNormAffine, BinaryConvOp]
        assert isinstance(program[0], BatchNormAffine)
        assert isinstance(program[1], BinaryConvOp)
        kinds = [type(node) for node in program]
        assert ResidualOp in kinds and DenseOp in kinds and PoolOp in kinds

    def test_names_are_dotted_module_paths(self):
        model = bnn_resnet8(seed=0, base_width=4)
        program = lower(model)
        names = [node.name for node in program.walk()]
        assert len(names) == len(set(names)), "node names must be unique"
        assert "0.bn" in names and "0.conv" in names
        assert any(".main." in name for name in names)

    def test_weights_are_snapshots(self, rng):
        conv = BinaryConv2D(1, 4, 3, rng=rng)
        program = lower(Sequential(conv))
        before = program[0].weight.copy()
        conv.weight.data[...] = 7.0
        np.testing.assert_array_equal(program[0].weight, before)

    def test_batchnorm_freezes_running_stats(self, rng):
        bn = BatchNorm2D(3)
        bn.running_mean = rng.normal(size=3)
        bn.running_var = np.abs(rng.normal(size=3)) + 0.5
        node = lower(Sequential(bn))[0]
        expected_scale = bn.gamma.data / np.sqrt(bn.running_var + bn.eps)
        np.testing.assert_allclose(node.scale, expected_scale)
        np.testing.assert_allclose(
            node.shift, bn.beta.data - bn.running_mean * expected_scale
        )

    def test_dropout_lowers_to_identity(self):
        program = lower(Sequential(Dropout(0.5)))
        assert isinstance(program[0], ActivationOp)
        assert program[0].kind == "identity"

    def test_unknown_layer_raises_typed_error(self):
        class Strange(Module):
            pass

        with pytest.raises(LoweringError) as excinfo:
            lower(Sequential(Strange()))
        assert excinfo.value.layer_type == "Strange"
        assert isinstance(excinfo.value, TypeError)  # legacy contract

    def test_binary_dense_node(self, rng):
        program = lower(Sequential(BinaryDense(6, 2, rng=rng)))
        node = program[0]
        assert isinstance(node, BinaryDenseOp)
        assert node.in_features == 6 and node.out_features == 2


class TestStemFinder:
    def test_resnet_stem_found_after_pointwise_prefix(self):
        model = bnn_resnet8(seed=0, base_width=4)
        program = lower(model)
        index = find_plane_stem(program)
        assert index == 1  # after the stem block's batch-norm
        assert program[index].in_channels == 1

    def test_multichannel_stem_rejected(self, rng):
        program = lower(Sequential(BinaryConv2D(3, 4, 3, rng=rng)))
        assert find_plane_stem(program) is None

    def test_exotic_padding_rejected(self, rng):
        program = lower(
            Sequential(BinaryConv2D(1, 4, 3, padding=3, rng=rng))
        )
        assert find_plane_stem(program) is None

    def test_no_conv_at_all(self):
        program = lower(Sequential(GlobalAvgPool2D(), Dense(1, 2)))
        assert find_plane_stem(program) is None


class TestShapes:
    def test_infer_shapes_covers_residual_branches(self):
        model = bnn_resnet8(seed=0, base_width=4)
        program = lower(model)
        shapes = infer_shapes(program, (2, 1, 16, 16))
        walked = {node.name for node in program.walk()}
        assert set(shapes) == walked
        # the head sees (n, classes)
        last = program[len(program) - 1]
        assert shapes[last.name][1] == (2, 2)

    def test_shapes_match_execution(self, rng):
        from repro.engine import get_backend

        model = bnn_resnet8(seed=0, base_width=4)
        model.forward(rng.normal(size=(4, 1, 16, 16)), training=True)
        program = lower(model)
        out = get_backend("packed").compile(program).run(
            rng.normal(size=(3, 1, 16, 16))
        )
        shapes = infer_shapes(program, (3, 1, 16, 16))
        assert tuple(out.shape) == shapes[program[len(program) - 1].name][1]

    def test_describe_lists_every_node(self):
        model = bnn_resnet8(seed=0, base_width=4)
        program = lower(model)
        text = describe(program, input_shape=(1, 1, 16, 16))
        assert "BinaryConvOp" in text and "ResidualOp" in text
        assert "-> (1, 2)" in text

    def test_relu_lowering(self):
        program = lower(Sequential(ReLU()))
        assert program[0].kind == "relu"
