"""Tests for the cross-backend parity harness (bit-identical logits)."""

import numpy as np
import pytest

from repro.engine import available_backends, pipeline_signature
from repro.engine.parity import (
    PairResult,
    ParityResult,
    assert_backend_parity,
    compare_backends,
    main,
    seeded_model,
)


class TestCompareBackends:
    @pytest.mark.parametrize("scaling", ["xnor", "channelwise", "none"])
    def test_bit_identical_across_backends(self, scaling):
        model = seeded_model(scaling=scaling)
        result = compare_backends(model)
        assert result.ok, result.failures()
        for pair in result.pairs:
            assert pair.identical
            assert pair.max_abs_diff == 0.0

    def test_table16_eligible_stem_is_covered(self):
        # stem_stride=1 keeps the 3x3 single-channel stem (9 bits, one
        # word) on the table16 fast path inside the packed backend; the
        # float backend must still match bit for bit
        model = seeded_model(stem_stride=1)
        result = compare_backends(model)
        assert result.ok, result.failures()

    def test_strided_stem(self):
        model = seeded_model(stem_stride=2)
        assert compare_backends(model).ok

    def test_all_registered_backends_are_compared(self):
        result = compare_backends(seeded_model())
        # variants are backend[pipeline-signature], covering every
        # registered backend under both the raw lowered program and
        # the default pass pipeline
        backends = {v.split("[", 1)[0] for v in result.backends}
        pipelines = {v.split("[", 1)[1].rstrip("]") for v in result.backends}
        assert backends == set(available_backends())
        assert pipelines == {"none", pipeline_signature("default")}
        names = {name for pair in result.pairs
                 for name in (pair.left, pair.right)}
        assert names == set(result.backends)

    def test_reuses_caller_images(self):
        rng = np.random.default_rng(3)
        images = np.sign(rng.normal(size=(4, 1, 16, 16))) + 0.0
        keep = images.copy()
        model = seeded_model()
        result = compare_backends(model, images=images)
        assert result.ok
        np.testing.assert_array_equal(images, keep)

    def test_failures_reported(self):
        bad = ParityResult(
            backends=("float", "packed"),
            pairs=[PairResult(left="float", right="packed",
                              identical=False, max_abs_diff=1.0)],
        )
        assert not bad.ok
        assert bad.failures() == bad.pairs


class TestAssertParity:
    def test_passes_on_seeded_model(self):
        assert_backend_parity(seeded_model())

    def test_raises_on_mismatch(self, monkeypatch):
        import repro.engine.parity as parity_mod

        def rigged(model, **kwargs):
            return parity_mod.ParityResult(
                backends=("float", "packed"),
                pairs=[parity_mod.PairResult(
                    left="float", right="packed",
                    identical=False, max_abs_diff=0.5,
                )],
            )

        monkeypatch.setattr(parity_mod, "compare_backends", rigged)
        with pytest.raises(AssertionError):
            parity_mod.assert_backend_parity(seeded_model())


class TestCli:
    def test_quick_run_exits_zero(self, capsys):
        code = main([
            "--image-size", "16", "--base-width", "4", "--batch", "4",
            "--scaling", "xnor", "--stem-stride", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "OK" in out
