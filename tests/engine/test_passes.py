"""Tests for the pass pipeline: idempotence, ordering, verification.

The pass layer's contracts beyond "logits never change" (which
``repro.engine.parity`` and its tests gate):

* running the default pipeline twice is a no-op (idempotence);
* ``hoist-scales`` and ``liveness`` commute (they touch disjoint
  fields of the fused nodes);
* :func:`~repro.engine.ir.verify_program` rejects the malformed fused
  graphs a buggy rewrite could emit — each rejection here corresponds
  to a silent-wrong-logits failure mode if it slipped through.
"""

import numpy as np
import pytest

from repro.engine import (
    BatchNormAffine,
    BinaryConvOp,
    DEFAULT_PIPELINE,
    FusedBinaryConvOp,
    Program,
    ResidualOp,
    VerifierError,
    lower,
    pipeline_signature,
    run_pipeline,
    run_pipeline_snapshots,
    verify_program,
)
from repro.engine.passes import available_passes, get_pass, resolve_pipeline
from repro.models import bnn_resnet8


@pytest.fixture(scope="module")
def lowered():
    return lower(bnn_resnet8(seed=0, base_width=4))


def fingerprint(program):
    """Structural + numerical identity of a program, order-sensitive."""
    rows = []
    for node in program.walk():
        row = [type(node).__name__, node.name]
        for attr in ("sources", "inplace_input", "kind", "scaling",
                     "stride", "padding"):
            row.append(getattr(node, attr, None))
        for attr in ("weight", "bn_scale", "bn_shift", "w_binary",
                     "alpha_w", "scale", "shift"):
            value = getattr(node, attr, None)
            row.append(None if value is None else value.tobytes())
        rows.append(tuple(row))
    return rows


class TestPipelineAlgebra:
    def test_default_pipeline_is_idempotent(self, lowered):
        once = run_pipeline(lowered, "default")
        twice = run_pipeline(once, "default")
        assert fingerprint(once) == fingerprint(twice)

    def test_each_pass_is_idempotent(self, lowered):
        program = lowered
        for name in DEFAULT_PIPELINE:
            program = run_pipeline(program, [name])
            again = run_pipeline(program, [name])
            assert fingerprint(program) == fingerprint(again), name

    def test_hoist_scales_and_liveness_commute(self, lowered):
        ab = run_pipeline(lowered, ["fold-bn", "hoist-scales", "liveness"])
        ba = run_pipeline(lowered, ["fold-bn", "liveness", "hoist-scales"])
        assert fingerprint(ab) == fingerprint(ba)

    def test_fold_bn_absorbs_batchnorms_before_binary_convs(self, lowered):
        folded = run_pipeline(lowered, ["fold-bn"])
        walked = list(folded.walk())
        fused = [n for n in walked if isinstance(n, FusedBinaryConvOp)]
        assert fused, "fold-bn must emit fused nodes"
        # every fused node carries its anchor name plus the folded bn
        for node in fused:
            assert node.name in node.sources
            if node.bn_scale is not None:
                assert len(node.sources) == 2
        # no BatchNormAffine directly feeding a binary conv remains
        for prog in [folded] + [
            branch
            for n in walked if isinstance(n, ResidualOp)
            for branch in (n.main, n.shortcut) if branch is not None
        ]:
            for prev, nxt in zip(prog, list(prog)[1:]):
                assert not (
                    isinstance(prev, BatchNormAffine)
                    and isinstance(nxt, (BinaryConvOp, FusedBinaryConvOp))
                )

    def test_pipeline_specs_resolve(self):
        assert pipeline_signature("default") == ">".join(DEFAULT_PIPELINE)
        assert pipeline_signature(None) == ">".join(DEFAULT_PIPELINE)
        assert pipeline_signature("none") == "none"
        assert pipeline_signature(["fold-bn"]) == "fold-bn"
        assert resolve_pipeline("none") == ()
        assert set(DEFAULT_PIPELINE) <= set(available_passes())
        with pytest.raises(ValueError, match="unknown pipeline spec"):
            resolve_pipeline("fold-bn")  # bare names need a list
        with pytest.raises(ValueError, match="unknown pass"):
            get_pass("constant-folding")

    def test_snapshots_cover_every_stage(self, lowered):
        snaps = run_pipeline_snapshots(lowered, "default")
        assert [s.name for s in snaps] == ["lowered", *DEFAULT_PIPELINE]
        assert fingerprint(snaps[-1].program) == fingerprint(
            run_pipeline(lowered, "default")
        )


def _fused(**overrides):
    """A minimal valid hoisted fused node; overrides inject defects."""
    rng = np.random.default_rng(0)
    weight = rng.normal(size=(4, 2, 3, 3))
    fields = dict(
        name="conv",
        in_channels=2,
        out_channels=4,
        kernel_size=3,
        stride=1,
        padding=1,
        scaling="xnor",
        weight=weight,
        sources=("bn", "conv"),
        bn_scale=np.ones(2),
        bn_shift=np.zeros(2),
        w_binary=np.where(weight >= 0, 1.0, -1.0),
        alpha_w=np.abs(weight).mean(axis=(1, 2, 3)),
    )
    fields.update(overrides)
    return FusedBinaryConvOp(**fields)


class TestVerifierRejections:
    def test_valid_node_passes(self):
        verify_program(Program((_fused(),)))

    def test_one_sided_batchnorm_fold(self):
        with pytest.raises(VerifierError, match="both be set or both"):
            verify_program(Program((_fused(bn_shift=None),)))

    def test_batchnorm_arrays_must_match_in_channels(self):
        with pytest.raises(VerifierError, match="folded batch-norm"):
            verify_program(Program((
                _fused(bn_scale=np.ones(3), bn_shift=np.zeros(3)),
            )))

    def test_one_sided_hoist(self):
        with pytest.raises(VerifierError, match="both be hoisted"):
            verify_program(Program((_fused(alpha_w=None),)))

    def test_stale_hoisted_w_binary(self):
        node = _fused()
        stale = node.w_binary.copy()
        stale[0, 0, 0, 0] = -stale[0, 0, 0, 0]
        with pytest.raises(VerifierError, match="does not equal"):
            verify_program(Program((_fused(w_binary=stale),)))

    def test_sources_must_include_anchor(self):
        with pytest.raises(VerifierError, match="anchor"):
            verify_program(Program((_fused(sources=("bn",)),)))
        with pytest.raises(VerifierError, match="anchor"):
            verify_program(Program((_fused(sources=()),)))

    def test_weight_geometry_mismatch(self):
        with pytest.raises(VerifierError, match="weight shape"):
            verify_program(Program((_fused(kernel_size=5),)))

    def test_bad_geometry(self):
        weight = np.ones((4, 2, 3, 3))
        with pytest.raises(VerifierError, match="bad geometry"):
            verify_program(Program((
                _fused(stride=0, weight=weight,
                       w_binary=np.where(weight >= 0, 1.0, -1.0)),
            )))

    def test_unknown_scaling(self):
        with pytest.raises(VerifierError, match="unknown scaling"):
            verify_program(Program((_fused(scaling="l2"),)))

    def test_duplicate_names(self):
        with pytest.raises(VerifierError, match="duplicate node name"):
            verify_program(Program((_fused(), _fused())))

    def test_channel_dataflow_mismatch(self):
        with pytest.raises(VerifierError, match="input channels"):
            verify_program(
                Program((_fused(),)), input_shape=(1, 3, 8, 8)
            )

    def test_residual_branch_shape_mismatch(self):
        main = Program((_fused(),))           # 2ch -> 4ch, same spatial
        shortcut = Program((
            _fused(name="short", sources=("short",), stride=2,
                   bn_scale=None, bn_shift=None),
        ))
        residual = ResidualOp(name="res", main=main, shortcut=shortcut)
        with pytest.raises(VerifierError, match="branch shapes differ"):
            verify_program(
                Program((residual,)), input_shape=(1, 2, 8, 8)
            )

    def test_pipeline_output_verifies_with_shapes(self, lowered):
        program = run_pipeline(
            lowered, "default", input_shape=(2, 1, 32, 32)
        )
        verify_program(program, input_shape=(2, 1, 32, 32))
