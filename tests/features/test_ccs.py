"""Tests for concentric-circle-sampling features (ICCAD'16 encoding)."""

import numpy as np
import pytest

from repro.features import ccs_features, circle_samples, default_radii


class TestRadii:
    def test_count_and_range(self):
        radii = default_radii(64, n_circles=10)
        assert len(radii) == 10
        assert radii[0] > 0
        assert radii[-1] <= 0.95 * 32

    def test_monotone(self):
        radii = default_radii(128)
        assert (np.diff(radii) > 0).all()

    def test_invalid_count_raises(self):
        with pytest.raises(ValueError):
            default_radii(64, n_circles=0)


class TestCircleSamples:
    def test_proportional_to_circumference(self):
        assert circle_samples(100.0) > circle_samples(10.0)

    def test_minimum_enforced(self):
        assert circle_samples(0.5, min_samples=8) == 8


class TestCCSFeatures:
    def test_shape_consistent(self, rng):
        images = rng.random((5, 32, 32))
        features = ccs_features(images)
        assert features.shape[0] == 5
        # all rows use the same sampling pattern
        assert features.shape[1] == ccs_features(images[:1]).shape[1]

    def test_accepts_channel_axis(self, rng):
        a = ccs_features(rng.random((2, 1, 32, 32)))
        assert a.shape[0] == 2

    def test_constant_image(self):
        images = np.full((1, 32, 32), 0.7)
        features = ccs_features(images)
        np.testing.assert_allclose(features, 0.7, atol=1e-12)

    def test_center_blob_hits_inner_circles_only(self):
        images = np.zeros((1, 64, 64))
        images[0, 28:36, 28:36] = 1.0
        radii = np.array([4.0, 28.0])
        features = ccs_features(images, radii=radii, min_samples=8)
        inner = features[0, : circle_samples(4.0)]
        outer = features[0, circle_samples(4.0) :]
        assert inner.mean() > 0.7  # bilinear softening at the blob edge
        assert outer.mean() < 0.1

    def test_rotation_by_90_degrees_permutes_features(self, rng):
        """CCS is (approximately) rotation-equivariant: rotating the
        image permutes samples within each circle, so per-circle sums
        are preserved."""
        images = (rng.random((1, 33, 33)) > 0.5).astype(float)
        rotated = np.rot90(images[0]).copy()[None]
        radii = np.array([8.0])
        a = ccs_features(images, radii=radii)[0]
        b = ccs_features(rotated, radii=radii)[0]
        # bilinear resampling on a speckle image leaves ~10% slack
        assert a.sum() == pytest.approx(b.sum(), rel=0.15)

    def test_multichannel_raises(self, rng):
        with pytest.raises(ValueError):
            ccs_features(rng.random((1, 3, 16, 16)))

    def test_non_square_raises(self, rng):
        with pytest.raises(ValueError):
            ccs_features(rng.random((1, 16, 20)))
