"""Tests for DCT feature-tensor extraction (the DAC'17 encoding)."""

import numpy as np
import pytest
from scipy.fft import dctn, idctn

from repro.features import dct_feature_tensor, zigzag_indices


class TestZigzag:
    def test_small_block_order(self):
        # JPEG zig-zag for 3x3
        assert zigzag_indices(3) == [
            (0, 0), (0, 1), (1, 0), (2, 0), (1, 1), (0, 2),
            (1, 2), (2, 1), (2, 2),
        ]

    def test_covers_all_cells_once(self):
        order = zigzag_indices(8)
        assert len(order) == 64
        assert len(set(order)) == 64

    def test_frequencies_nondecreasing_prefix(self):
        """The first entries are the lowest spatial frequencies."""
        order = zigzag_indices(8)
        sums = [i + j for i, j in order]
        assert sums[:4] == [0, 1, 1, 2]


class TestFeatureTensor:
    def test_shape(self, rng):
        images = rng.random((3, 16, 16))
        tensor = dct_feature_tensor(images, block=4, coefficients=6)
        assert tensor.shape == (3, 6, 4, 4)

    def test_accepts_channel_axis(self, rng):
        images = rng.random((2, 1, 16, 16))
        tensor = dct_feature_tensor(images, block=8, coefficients=4)
        assert tensor.shape == (2, 4, 2, 2)

    def test_dc_coefficient_is_block_mean(self, rng):
        """Channel 0 (the DC term) equals block mean * block size (ortho
        normalisation)."""
        images = rng.random((1, 8, 8))
        tensor = dct_feature_tensor(images, block=4, coefficients=1)
        block_means = images.reshape(1, 2, 4, 2, 4).transpose(0, 1, 3, 2, 4)
        expected = block_means.mean(axis=(-2, -1)) * 4  # dctn ortho DC = N*mean
        np.testing.assert_allclose(tensor[:, 0], expected, atol=1e-10)

    def test_full_coefficients_invertible(self, rng):
        """Keeping all block * block coefficients loses nothing: the
        original image is recoverable block-wise."""
        image = rng.random((1, 8, 8))
        tensor = dct_feature_tensor(image, block=4, coefficients=16)
        scan = zigzag_indices(4)
        block = np.zeros((4, 4))
        for channel, (i, j) in enumerate(scan):
            block[i, j] = tensor[0, channel, 0, 0]
        recovered = idctn(block, norm="ortho")
        np.testing.assert_allclose(recovered, image[0, :4, :4], atol=1e-10)

    def test_truncation_keeps_most_energy(self, rng):
        """Low-frequency truncation keeps >60% of the spectral energy of
        smooth layout-like images."""
        smooth = np.zeros((1, 16, 16))
        smooth[0, 4:12, 4:12] = 1.0
        full = dct_feature_tensor(smooth, block=8, coefficients=64)
        truncated = dct_feature_tensor(smooth, block=8, coefficients=8)
        energy_ratio = (truncated**2).sum() / (full**2).sum()
        assert energy_ratio > 0.6

    def test_too_many_coefficients_raises(self, rng):
        with pytest.raises(ValueError):
            dct_feature_tensor(rng.random((1, 8, 8)), block=2, coefficients=5)

    def test_indivisible_block_raises(self, rng):
        with pytest.raises(ValueError):
            dct_feature_tensor(rng.random((1, 10, 10)), block=4)

    def test_multichannel_raises(self, rng):
        with pytest.raises(ValueError):
            dct_feature_tensor(rng.random((1, 3, 8, 8)), block=4)
