"""Tests for density features and mutual-information selection."""

import numpy as np
import pytest

from repro.features import (
    FeatureSelector,
    density_features,
    density_grid,
    mutual_information,
    select_features,
)


class TestDensity:
    def test_grid_values(self):
        images = np.zeros((1, 8, 8))
        images[0, :4, :4] = 1.0
        grid = density_grid(images, grid=2)
        np.testing.assert_allclose(grid[0], [[1.0, 0.0], [0.0, 0.0]])

    def test_flat_features(self, rng):
        images = rng.random((4, 16, 16))
        features = density_features(images, grid=4)
        assert features.shape == (4, 16)

    def test_channel_axis(self, rng):
        features = density_features(rng.random((3, 1, 16, 16)), grid=8)
        assert features.shape == (3, 64)

    def test_values_in_unit_interval(self, rng):
        images = (rng.random((5, 16, 16)) > 0.5).astype(float)
        features = density_features(images, grid=4)
        assert features.min() >= 0.0 and features.max() <= 1.0


class TestMutualInformation:
    def test_perfectly_informative_feature(self, rng):
        labels = rng.integers(0, 2, size=400)
        feature = labels + 0.01 * rng.normal(size=400)
        mi = mutual_information(feature, labels)
        assert mi > 0.5  # close to ln 2 ~ 0.69

    def test_independent_feature_near_zero(self, rng):
        labels = rng.integers(0, 2, size=1000)
        feature = rng.normal(size=1000)
        assert mutual_information(feature, labels) < 0.05

    def test_constant_feature_is_zero(self):
        assert mutual_information(np.ones(50), np.zeros(50, int)) == 0.0

    def test_nonnegative(self, rng):
        for _ in range(5):
            mi = mutual_information(
                rng.normal(size=100), rng.integers(0, 2, size=100)
            )
            assert mi >= 0.0


class TestSelection:
    def test_informative_feature_ranked_first(self, rng):
        labels = rng.integers(0, 2, size=300)
        noise = rng.normal(size=(300, 5))
        signal = labels[:, None] + 0.05 * rng.normal(size=(300, 1))
        features = np.hstack([noise[:, :2], signal, noise[:, 2:]])
        selected = select_features(features, labels, k=1)
        assert selected[0] == 2

    def test_k_bounds(self, rng):
        features = rng.normal(size=(20, 4))
        labels = rng.integers(0, 2, size=20)
        with pytest.raises(ValueError):
            select_features(features, labels, k=0)
        with pytest.raises(ValueError):
            select_features(features, labels, k=5)

    def test_selector_roundtrip(self, rng):
        labels = rng.integers(0, 2, size=100)
        features = rng.normal(size=(100, 6))
        features[:, 3] = labels  # plant the signal
        selector = FeatureSelector(k=2)
        out = selector.fit_transform(features, labels)
        assert out.shape == (100, 2)
        np.testing.assert_array_equal(
            selector.transform(features), features[:, selector.indices_]
        )
        assert 3 in selector.indices_

    def test_transform_before_fit_raises(self, rng):
        with pytest.raises(RuntimeError):
            FeatureSelector(k=1).transform(rng.normal(size=(5, 3)))
