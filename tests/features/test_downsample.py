"""Tests for the paper's down-sampling preprocessing (Section 3.4.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.features import (
    block_reduce_mean,
    downsample_area,
    downsample_binary,
    to_network_input,
)


class TestBlockReduce:
    def test_mean_pooling(self):
        image = np.arange(16, dtype=float).reshape(4, 4)
        out = block_reduce_mean(image, 2)
        np.testing.assert_allclose(out, [[2.5, 4.5], [10.5, 12.5]])

    def test_batch_axis_preserved(self, rng):
        images = rng.random((5, 8, 8))
        out = block_reduce_mean(images, 4)
        assert out.shape == (5, 4, 4)

    def test_indivisible_raises(self):
        with pytest.raises(ValueError):
            block_reduce_mean(np.zeros((6, 6)), 4)

    def test_non_square_raises(self):
        with pytest.raises(ValueError):
            block_reduce_mean(np.zeros((4, 8)), 2)


class TestDownsample:
    def test_area_preserves_mean(self, rng):
        image = rng.random((16, 16))
        out = downsample_area(image, 4)
        assert out.mean() == pytest.approx(image.mean())

    def test_area_identity_at_target(self, rng):
        image = rng.random((8, 8))
        np.testing.assert_array_equal(downsample_area(image, 8), image)

    def test_binary_majority_vote(self):
        image = np.zeros((4, 4))
        image[:2, :2] = 1.0   # one full block
        image[0, 2] = 1.0     # quarter of another block
        out = downsample_binary(image, 2)
        np.testing.assert_array_equal(out, [[1.0, 0.0], [0.0, 0.0]])

    def test_binary_output_is_binary(self, rng):
        out = downsample_binary(rng.random((32, 32)), 8)
        assert set(np.unique(out)) <= {0.0, 1.0}


class TestToNetworkInput:
    def test_maps_01_to_pm1(self):
        images = np.array([[[0.0, 1.0], [1.0, 0.0]]])
        out = to_network_input(images)
        assert out.shape == (1, 1, 2, 2)
        np.testing.assert_array_equal(out[0, 0], [[-1.0, 1.0], [1.0, -1.0]])

    def test_passthrough_4d(self, rng):
        images = rng.random((3, 1, 4, 4))
        assert to_network_input(images).shape == (3, 1, 4, 4)

    def test_bad_rank_raises(self, rng):
        with pytest.raises(ValueError):
            to_network_input(rng.random((4, 4)))


@settings(max_examples=25, deadline=None)
@given(factor=st.sampled_from([2, 4, 8]), seed=st.integers(0, 500))
def test_downsample_flip_commutes_property(factor, seed):
    """Property: down-sampling commutes with horizontal flips — the
    reason flip augmentation can run after preprocessing."""
    rng = np.random.default_rng(seed)
    image = (rng.random((32, 32)) > 0.5).astype(float)
    a = downsample_binary(image[:, ::-1], 32 // factor)
    b = downsample_binary(image, 32 // factor)[:, ::-1]
    np.testing.assert_array_equal(a, b)
