"""End-to-end integration tests: litho benchmark -> detector -> metrics.

Uses a tiny generated benchmark (seconds, not minutes); the full-scale
reproduction lives in benchmarks/.
"""

import numpy as np
import pytest

from repro.binary import PackedBNN
from repro.bench import load_benchmark, run_detectors
from repro.detect import (
    BNNDetector,
    DAC17Detector,
    ICCAD16Detector,
    SPIE15Detector,
)
from repro.litho import generate_iccad2012_like
from repro.nn import load_model, save_model


@pytest.fixture(scope="module")
def tiny_benchmark(tmp_path_factory):
    """Scale-0.004 benchmark at 32 px: ~5 HS / 68 NHS train."""
    return generate_iccad2012_like(scale=0.004, image_size=32, seed=77)


class TestPipeline:
    def test_benchmark_has_both_classes(self, tiny_benchmark):
        assert tiny_benchmark.train.labels.sum() >= 4
        assert (tiny_benchmark.train.labels == 0).sum() >= 60

    def test_bnn_detector_above_chance(self, tiny_benchmark):
        detector = BNNDetector(channels=(6, 12), epochs=6, finetune_epochs=2,
                               batch_size=16, seed=0, stem_stride=1)
        metrics = detector.fit_evaluate(
            tiny_benchmark.train, tiny_benchmark.test, np.random.default_rng(0)
        )
        # tiny data: only require meaningfully-above-chance behaviour
        flagged = metrics.confusion.tp + metrics.confusion.fp
        assert flagged > 0
        assert metrics.confusion.tp >= 1

    def test_all_detectors_run_on_benchmark(self, tiny_benchmark):
        detectors = [
            SPIE15Detector(grid=4, n_estimators=8),
            ICCAD16Detector(n_selected=24, epochs=4),
            DAC17Detector(block=4, coefficients=6, stage_widths=(4, 8),
                          epochs=2, finetune_epochs=0),
            BNNDetector(channels=(4,), epochs=2, finetune_epochs=0,
                        batch_size=16, stem_stride=1),
        ]
        results = run_detectors(detectors, tiny_benchmark, seed=0)
        assert len(results) == 4
        for metrics in results:
            assert 0.0 <= metrics.accuracy <= 1.0
            assert metrics.confusion.total == len(tiny_benchmark.test)

    def test_trained_model_save_load_predict(self, tiny_benchmark, tmp_path):
        detector = BNNDetector(channels=(4, 8), epochs=2, finetune_epochs=0,
                               batch_size=16, seed=1, stem_stride=1)
        detector.fit(tiny_benchmark.train, np.random.default_rng(1))
        before = detector.predict(tiny_benchmark.test.images)

        path = tmp_path / "bnn.npz"
        save_model(detector.model, path)
        fresh = BNNDetector(channels=(4, 8), seed=999, stem_stride=1)
        fresh.model = fresh._build(32)
        load_model(fresh.model, path)
        fresh.engine = PackedBNN(fresh.model)
        after = fresh.predict(tiny_benchmark.test.images)
        np.testing.assert_array_equal(before, after)

    def test_harness_cache_integration(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        first = load_benchmark(scale=0.001, image_size=16, seed=11)
        second = load_benchmark(scale=0.001, image_size=16, seed=11)
        np.testing.assert_array_equal(first.test.images, second.test.images)
