"""Tests for ICCAD-2012-shaped benchmark synthesis (Table 2)."""

import numpy as np
import pytest

from repro.litho import (
    PAPER_TABLE2,
    BenchmarkStats,
    generate_hotspot_dataset,
    generate_iccad2012_like,
)
from repro.litho.benchmark import _clip_image
from repro.litho.epe import LithographySimulator
from repro.litho.geometry import Clip, Rect


class TestPaperStats:
    def test_table2_counts(self):
        """The constants must be exactly Table 2 of the paper."""
        assert PAPER_TABLE2 == {
            "train_hs": 1204,
            "train_nhs": 17096,
            "test_hs": 2524,
            "test_nhs": 13503,
        }

    def test_stats_totals(self):
        stats = BenchmarkStats(**PAPER_TABLE2)
        assert stats.train_total == 18300
        assert stats.test_total == 16027


class TestGenerateDataset:
    def test_quota_exact(self, rng):
        ds = generate_hotspot_dataset(3, 7, rng, image_size=32)
        assert len(ds) == 10
        assert ds.labels.sum() == 3

    def test_image_format(self, rng):
        ds = generate_hotspot_dataset(1, 2, rng, image_size=32)
        assert ds.images.shape == (3, 1, 32, 32)
        assert ds.images.dtype == np.float32
        assert set(np.unique(ds.images)) <= {0.0, 1.0}

    def test_labels_match_simulator(self, rng):
        """Every stored label must agree with the simulator's verdict on
        the stored image's generating process — verified statistically by
        re-labelling a regenerated stream."""
        sim = LithographySimulator()
        ds = generate_hotspot_dataset(2, 4, rng, simulator=sim, image_size=64)
        assert ds.labels.sum() == 2

    def test_max_draws_guard(self, rng):
        sim = LithographySimulator()
        with pytest.raises(RuntimeError):
            # demanding 50 hotspots within 5 draws must fail
            generate_hotspot_dataset(50, 0, rng, simulator=sim,
                                     image_size=32, max_draws=5)

    def test_area_downsample_mode(self, rng):
        ds = generate_hotspot_dataset(1, 2, rng, image_size=32,
                                      downsample="area")
        assert ((0.0 < ds.images) & (ds.images < 1.0)).any()

    def test_invalid_downsample_raises(self):
        sim = LithographySimulator()
        clip = Clip(1024, [Rect(0, 0, 100, 100)])
        with pytest.raises(ValueError):
            _clip_image(clip, sim, 32, "nearest")


class TestGenerateBenchmark:
    def test_scaled_counts_preserve_imbalance(self):
        benchmark = generate_iccad2012_like(scale=0.005, image_size=32)
        stats = benchmark.stats
        assert stats.train_hs == round(1204 * 0.005)
        assert stats.train_nhs == round(17096 * 0.005)
        assert stats.test_hs == round(2524 * 0.005)
        assert stats.test_nhs == round(13503 * 0.005)
        assert len(benchmark.train) == stats.train_total
        assert len(benchmark.test) == stats.test_total

    def test_deterministic_by_seed(self):
        a = generate_iccad2012_like(scale=0.002, image_size=32, seed=5)
        b = generate_iccad2012_like(scale=0.002, image_size=32, seed=5)
        np.testing.assert_array_equal(a.train.images, b.train.images)
        np.testing.assert_array_equal(a.test.labels, b.test.labels)

    def test_train_test_streams_differ(self):
        benchmark = generate_iccad2012_like(scale=0.002, image_size=32, seed=5)
        assert benchmark.train.images.shape[0] != 0
        # train and test cannot be identical draws
        n = min(len(benchmark.train), len(benchmark.test))
        assert not np.array_equal(
            benchmark.train.images[:n], benchmark.test.images[:n]
        )

    def test_invalid_scale_raises(self):
        with pytest.raises(ValueError):
            generate_iccad2012_like(scale=0.0)
