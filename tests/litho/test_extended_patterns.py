"""Tests for the extended pattern families and registry split."""

import numpy as np
import pytest

from repro.litho import EXTENDED_FAMILIES, PATTERN_FAMILIES, sample_clip
from repro.litho.patterns import Technology, comb_fingers, contacted_cell


class TestRegistrySplit:
    def test_core_families_fixed(self):
        """The benchmark distribution must not drift: the core set is
        exactly the original five families."""
        assert set(PATTERN_FAMILIES) == {
            "grating", "line_end_pair", "elbows", "via_array",
            "random_manhattan",
        }

    def test_extended_superset(self):
        assert set(PATTERN_FAMILIES) < set(EXTENDED_FAMILIES)
        assert "comb_fingers" in EXTENDED_FAMILIES
        assert "contacted_cell" in EXTENDED_FAMILIES

    def test_default_sampling_uses_core_only(self):
        """Same seed, same clip — regardless of the extended registry."""
        a = sample_clip(np.random.default_rng(3))
        b = sample_clip(np.random.default_rng(3))
        assert a.rects == b.rects

    def test_weighted_sampling_reaches_extended(self):
        rng = np.random.default_rng(0)
        clip = sample_clip(rng, weights={"comb_fingers": 1.0})
        assert len(clip) >= 3  # two buses plus fingers


@pytest.mark.parametrize("generator", [comb_fingers, contacted_cell])
class TestNewFamilies:
    def test_geometry_in_window(self, generator):
        tech = Technology()
        rng = np.random.default_rng(9)
        for _ in range(8):
            clip = generator(rng, tech)
            assert len(clip) >= 1
            for rect in clip.rects:
                assert 0 <= rect.x0 < rect.x1 <= tech.clip_size
                assert 0 <= rect.y0 < rect.y1 <= tech.clip_size

    def test_deterministic(self, generator):
        a = generator(np.random.default_rng(4), Technology())
        b = generator(np.random.default_rng(4), Technology())
        assert a.rects == b.rects

    def test_produces_both_labels(self, generator):
        """Each family must straddle the printability edge."""
        from repro.litho import LithographySimulator

        simulator = LithographySimulator()
        rng = np.random.default_rng(5)
        labels = {simulator.is_hotspot(generator(rng)) for _ in range(20)}
        assert labels == {True, False}


class TestCombSpecifics:
    def test_has_two_buses(self):
        clip = comb_fingers(np.random.default_rng(1), Technology())
        full_width = [r for r in clip.rects if r.width == clip.size]
        assert len(full_width) >= 2


class TestContactedCellSpecifics:
    def test_pads_wider_than_lines(self):
        tech = Technology()
        clip = contacted_cell(np.random.default_rng(2), tech)
        widths = sorted({min(r.width, r.height) for r in clip.rects})
        assert len(widths) >= 2  # lines and pads have distinct widths
