"""Tests for full-chip synthesis and ECO edit traces."""

import numpy as np
import pytest

from repro.litho.fullchip import (
    LayoutEdit,
    apply_edits,
    synthesize_chip,
    synthesize_edit_trace,
)
from repro.litho.geometry import Clip, Rect
from repro.litho.patterns import Technology


class TestSynthesizeChip:
    def test_deterministic(self):
        a = synthesize_chip(8192, seed=5)
        b = synthesize_chip(8192, seed=5)
        assert list(a.rects) == list(b.rects)
        assert list(a.rects) != list(synthesize_chip(8192, seed=6).rects)

    def test_blocks_are_local(self):
        """No rectangle crosses a block boundary."""
        block = 2048
        layout = synthesize_chip(8192, seed=1, block=block)
        assert len(layout.rects) > 0
        for rect in layout.rects:
            assert rect.x0 // block == (rect.x1 - 1) // block
            assert rect.y0 // block == (rect.y1 - 1) // block

    def test_size_extension_shares_common_blocks(self):
        """Growing the chip keeps the shared blocks' geometry."""
        small = synthesize_chip(4096, seed=3, block=2048)
        large = synthesize_chip(8192, seed=3, block=2048)
        small_set = {(r.x0, r.y0, r.x1, r.y1) for r in small.rects}
        large_subset = {
            (r.x0, r.y0, r.x1, r.y1)
            for r in large.rects
            if r.x1 <= 4096 and r.y1 <= 4096
        }
        assert small_set == large_subset

    def test_rects_stay_in_bounds(self):
        layout = synthesize_chip(5000, seed=2, block=2048)
        for rect in layout.rects:
            assert 0 <= rect.x0 < rect.x1 <= 5000
            assert 0 <= rect.y0 < rect.y1 <= 5000

    def test_validation(self):
        with pytest.raises(ValueError):
            synthesize_chip(0)
        with pytest.raises(ValueError):
            synthesize_chip(1024, block=0)


class TestLayoutEdit:
    def test_kind_validation(self):
        with pytest.raises(ValueError, match="unknown edit kind"):
            LayoutEdit("replace", Rect(0, 0, 8, 8))

    def test_move_requires_target(self):
        with pytest.raises(ValueError, match="to="):
            LayoutEdit("move", Rect(0, 0, 8, 8))
        with pytest.raises(ValueError, match="to="):
            LayoutEdit("add", Rect(0, 0, 8, 8), to=Rect(8, 8, 16, 16))

    def test_dirty_rects(self):
        move = LayoutEdit("move", Rect(0, 0, 8, 8), to=Rect(8, 8, 16, 16))
        assert move.dirty_rects() == (Rect(0, 0, 8, 8), Rect(8, 8, 16, 16))
        add = LayoutEdit("add", Rect(0, 0, 8, 8))
        assert add.dirty_rects() == (Rect(0, 0, 8, 8),)


class TestApplyEdits:
    def test_list_semantics(self):
        a, b = Rect(0, 0, 8, 8), Rect(16, 16, 32, 32)
        layout = Clip(64, [a, b, a])  # duplicate geometry allowed
        edited = apply_edits(layout, [
            LayoutEdit("remove", a),            # first equal goes
            LayoutEdit("move", b, to=b.shifted(4, 0)),
            LayoutEdit("add", Rect(40, 40, 50, 50)),
        ])
        assert list(edited.rects) == [
            a, b.shifted(4, 0), Rect(40, 40, 50, 50)
        ]
        # the original layout is untouched
        assert list(layout.rects) == [a, b, a]

    def test_remove_missing_raises(self):
        layout = Clip(64, [Rect(0, 0, 8, 8)])
        with pytest.raises(ValueError, match="not in the layout"):
            apply_edits(layout, [LayoutEdit("remove", Rect(1, 1, 9, 9))])


class TestSynthesizeEditTrace:
    def test_deterministic_and_valid(self):
        layout = synthesize_chip(8192, seed=4)
        a = synthesize_edit_trace(layout, 20, seed=9)
        b = synthesize_edit_trace(layout, 20, seed=9)
        assert a == b
        assert len(a) == 20
        apply_edits(layout, a)  # sequential validity: must not raise

    def test_region_confines_edits(self):
        layout = synthesize_chip(8192, seed=4)
        region = Rect(0, 0, 2048, 2048)
        trace = synthesize_edit_trace(layout, 30, seed=10, region=region)
        for edit in trace:
            for rect in edit.dirty_rects():
                assert rect.intersects(region) or (
                    # moves may shift a region rect slightly outward
                    edit.kind == "move"
                )

    def test_empty_trace(self):
        layout = synthesize_chip(4096, seed=4)
        assert synthesize_edit_trace(layout, 0) == []
        with pytest.raises(ValueError):
            synthesize_edit_trace(layout, -1)

    def test_trace_on_empty_layout_stays_valid(self):
        """Removes/moves only ever target rects an earlier add created."""
        layout = Clip(4096)
        trace = synthesize_edit_trace(layout, 10, seed=11)
        assert trace[0].kind == "add"
        apply_edits(layout, trace)  # must not raise
