"""Tests for layout geometry primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.litho import Clip, Rect


def rects(max_size=100):
    return st.builds(
        lambda x0, y0, w, h: Rect(x0, y0, x0 + w, y0 + h),
        st.integers(0, max_size), st.integers(0, max_size),
        st.integers(1, max_size), st.integers(1, max_size),
    )


class TestRect:
    def test_dimensions(self):
        r = Rect(1, 2, 4, 7)
        assert (r.width, r.height, r.area) == (3, 5, 15)

    def test_degenerate_raises(self):
        with pytest.raises(ValueError):
            Rect(0, 0, 0, 5)
        with pytest.raises(ValueError):
            Rect(0, 5, 3, 5)

    def test_shifted(self):
        assert Rect(0, 0, 2, 2).shifted(3, -1) == Rect(3, -1, 5, 1)

    def test_intersects_touching_edges_do_not_count(self):
        assert not Rect(0, 0, 2, 2).intersects(Rect(2, 0, 4, 2))
        assert Rect(0, 0, 3, 3).intersects(Rect(2, 2, 5, 5))

    def test_intersection_geometry(self):
        inter = Rect(0, 0, 4, 4).intersection(Rect(2, 1, 6, 3))
        assert inter == Rect(2, 1, 4, 3)
        assert Rect(0, 0, 1, 1).intersection(Rect(5, 5, 6, 6)) is None


@settings(max_examples=50, deadline=None)
@given(a=rects(), b=rects())
def test_intersection_symmetric_property(a, b):
    """Property: intersection is symmetric and contained in both."""
    ab, ba = a.intersection(b), b.intersection(a)
    assert ab == ba
    if ab is not None:
        assert ab.area <= min(a.area, b.area)
        assert ab.x0 >= max(a.x0, b.x0) and ab.x1 <= min(a.x1, b.x1)


class TestClip:
    def test_add_clips_to_window(self):
        clip = Clip(100)
        clip.add(Rect(-50, 10, 50, 20))
        assert clip.rects == [Rect(0, 10, 50, 20)]

    def test_fully_outside_dropped(self):
        clip = Clip(100)
        clip.add(Rect(200, 200, 300, 300))
        assert len(clip) == 0

    def test_invalid_size_raises(self):
        with pytest.raises(ValueError):
            Clip(0)

    def test_flip_horizontal_involution(self):
        clip = Clip(100, [Rect(10, 20, 30, 80), Rect(50, 0, 70, 100)])
        double = clip.flip_horizontal().flip_horizontal()
        assert sorted(double.rects, key=lambda r: r.x0) == sorted(
            clip.rects, key=lambda r: r.x0
        )

    def test_flip_preserves_density(self):
        clip = Clip(100, [Rect(10, 20, 30, 80)])
        assert clip.flip_vertical().density() == pytest.approx(clip.density())

    def test_transposed_swaps_axes(self):
        clip = Clip(100, [Rect(10, 0, 20, 100)])
        assert clip.transposed().rects == [Rect(0, 10, 100, 20)]

    def test_density_single_rect(self):
        clip = Clip(10, [Rect(0, 0, 5, 10)])
        assert clip.density() == pytest.approx(0.5)

    def test_density_overlap_not_double_counted(self):
        clip = Clip(10, [Rect(0, 0, 6, 10), Rect(4, 0, 10, 10)])
        assert clip.density() == pytest.approx(1.0)

    def test_density_disjoint_adds(self):
        clip = Clip(10, [Rect(0, 0, 2, 10), Rect(5, 0, 7, 10)])
        assert clip.density() == pytest.approx(0.4)

    def test_empty_density_zero(self):
        assert Clip(50).density() == 0.0


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 1000), n=st.integers(1, 6))
def test_density_matches_fine_raster_property(seed, n):
    """Property: the sweep-line density agrees with a fine rasterisation."""
    from repro.litho import rasterize

    rng = np.random.default_rng(seed)
    clip = Clip(64)
    for _ in range(n):
        x0, y0 = int(rng.integers(0, 56)), int(rng.integers(0, 56))
        w, h = int(rng.integers(1, 8)), int(rng.integers(1, 8))
        clip.add(Rect(x0, y0, x0 + w, y0 + h))
    image = rasterize(clip, 64, mode="area")
    assert image.mean() == pytest.approx(clip.density(), abs=1e-9)
