"""Tests for clip persistence."""

import numpy as np
import pytest

from repro.litho import Clip, Rect, sample_clip
from repro.litho.io import (
    clips_from_json,
    clips_to_json,
    load_clips_json,
    load_clips_text,
    save_clips_json,
    save_clips_text,
)


def sample_clips(n=5, seed=0):
    rng = np.random.default_rng(seed)
    return [sample_clip(rng) for _ in range(n)]


def assert_clips_equal(a, b):
    assert len(a) == len(b)
    for clip_a, clip_b in zip(a, b):
        assert clip_a.size == clip_b.size
        assert clip_a.rects == clip_b.rects


class TestJson:
    def test_roundtrip_in_memory(self):
        clips = sample_clips()
        assert_clips_equal(clips, clips_from_json(clips_to_json(clips)))

    def test_roundtrip_file(self, tmp_path):
        clips = sample_clips(seed=3)
        path = tmp_path / "clips.json"
        save_clips_json(clips, path)
        assert_clips_equal(clips, load_clips_json(path))

    def test_empty_clip_roundtrip(self, tmp_path):
        path = tmp_path / "empty.json"
        save_clips_json([Clip(512)], path)
        loaded = load_clips_json(path)
        assert loaded[0].size == 512
        assert len(loaded[0]) == 0

    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError):
            clips_from_json({"format": "something-else"})

    def test_wrong_version_rejected(self):
        with pytest.raises(ValueError):
            clips_from_json({"format": "repro-clips", "version": 99})


class TestText:
    def test_roundtrip(self, tmp_path):
        clips = sample_clips(seed=7)
        path = tmp_path / "clips.txt"
        save_clips_text(clips, path)
        assert_clips_equal(clips, load_clips_text(path))

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "c.txt"
        path.write_text("# comment\n\nCLIP 100\nBOX 0 0 10 10\n\n")
        clips = load_clips_text(path)
        assert clips[0].rects == [Rect(0, 0, 10, 10)]

    def test_box_before_clip_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("BOX 0 0 1 1\n")
        with pytest.raises(ValueError, match="line 1"):
            load_clips_text(path)

    def test_garbage_line_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("CLIP 100\nPOLYGON 1 2 3\n")
        with pytest.raises(ValueError, match="line 2"):
            load_clips_text(path)

    def test_text_is_human_readable(self, tmp_path):
        path = tmp_path / "c.txt"
        save_clips_text([Clip(64, [Rect(1, 2, 3, 4)])], path)
        content = path.read_text()
        assert "CLIP 64" in content
        assert "BOX 1 2 3 4" in content
