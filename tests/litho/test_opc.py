"""Tests for optical proximity correction."""

import numpy as np
import pytest

from repro.litho import Clip, LithographySimulator, Rect, rule_based_opc
from repro.litho.epe import analyze_contours
from repro.litho.opc import IterativeOPC
from repro.litho.raster import rasterize
from repro.litho.resist import nominal_corner


def nominal_epe(simulator, target_clip, mask_clip):
    pixel_nm = target_clip.size / simulator.resolution_px
    printed = simulator.simulate_corner(
        rasterize(mask_clip, simulator.resolution_px, "area"),
        pixel_nm, nominal_corner(),
    )
    target = rasterize(target_clip, simulator.resolution_px,
                       "binary").astype(bool)
    return analyze_contours(target, printed, pixel_nm)


class TestRuleBasedOPC:
    def test_bias_grows_rectangles(self):
        clip = Clip(1024, [Rect(400, 400, 600, 600)])
        corrected = rule_based_opc(clip, bias=10, line_end_extension=0)
        rect = corrected.rects[0]
        assert rect.width == 220
        assert rect.height == 220

    def test_line_end_extension_on_wires(self):
        clip = Clip(1024, [Rect(480, 200, 540, 800)])  # vertical wire
        corrected = rule_based_opc(clip, bias=0, line_end_extension=20)
        rect = corrected.rects[0]
        assert rect.y0 == 180 and rect.y1 == 820
        assert rect.x0 == 480 and rect.x1 == 540

    def test_horizontal_wire_extended_in_x(self):
        clip = Clip(1024, [Rect(200, 480, 800, 540)])
        corrected = rule_based_opc(clip, bias=0, line_end_extension=20)
        rect = corrected.rects[0]
        assert rect.x0 == 180 and rect.x1 == 820

    def test_clipped_to_window(self):
        clip = Clip(1024, [Rect(0, 0, 100, 100)])
        corrected = rule_based_opc(clip, bias=30)
        rect = corrected.rects[0]
        assert rect.x0 == 0 and rect.y0 == 0

    def test_negative_parameters_raise(self):
        with pytest.raises(ValueError):
            rule_based_opc(Clip(100), bias=-1)

    def test_reduces_wire_epe(self):
        """The headline property: corrected masks print closer to target."""
        simulator = LithographySimulator()
        clip = Clip(1024, [Rect(460, 100, 560, 900)])
        before = nominal_epe(simulator, clip, clip).max_epe_nm
        after = nominal_epe(simulator, clip, rule_based_opc(clip)).max_epe_nm
        assert after < before

    def test_rescues_vanishing_via(self):
        """A via that vanishes as drawn prints after a sufficient bias."""
        simulator = LithographySimulator()
        clip = Clip(1024, [Rect(490, 490, 550, 550)])
        assert nominal_epe(simulator, clip, clip).broken
        corrected = rule_based_opc(clip, bias=14)
        assert not nominal_epe(simulator, clip, corrected).broken


class TestIterativeOPC:
    def test_validation(self):
        with pytest.raises(ValueError):
            IterativeOPC(damping=0.0)
        with pytest.raises(ValueError):
            IterativeOPC(iterations=0)

    def test_reduces_epe_on_wire(self):
        simulator = LithographySimulator()
        clip = Clip(1024, [Rect(460, 100, 560, 900)])
        opc = IterativeOPC(simulator, iterations=3)
        before = nominal_epe(simulator, clip, clip).max_epe_nm
        assert opc.residual_epe(clip) < before

    def test_grows_small_via(self):
        simulator = LithographySimulator()
        clip = Clip(1024, [Rect(480, 480, 560, 560)])
        opc = IterativeOPC(simulator, iterations=3)
        corrected = opc.correct(clip)
        assert corrected.rects[0].area > clip.rects[0].area

    def test_correct_preserves_rect_count(self):
        simulator = LithographySimulator()
        clip = Clip(1024, [Rect(200, 200, 400, 800),
                           Rect(600, 200, 800, 800)])
        corrected = IterativeOPC(simulator, iterations=2).correct(clip)
        assert len(corrected) == len(clip)

    def test_target_clip_unchanged(self):
        simulator = LithographySimulator()
        clip = Clip(1024, [Rect(460, 100, 560, 900)])
        original = list(clip.rects)
        IterativeOPC(simulator, iterations=2).correct(clip)
        assert clip.rects == original
