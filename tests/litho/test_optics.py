"""Tests for the SOCS-Gaussian aerial-image model."""

import numpy as np
import pytest

from repro.litho import Clip, OpticalModel, Rect, gaussian_kernel, rasterize


class TestGaussianKernel:
    def test_normalised(self):
        assert gaussian_kernel(2.0).sum() == pytest.approx(1.0)

    def test_symmetric(self):
        k = gaussian_kernel(1.5)
        np.testing.assert_allclose(k, k[::-1, :])
        np.testing.assert_allclose(k, k[:, ::-1])
        np.testing.assert_allclose(k, k.T)

    def test_peak_at_center(self):
        k = gaussian_kernel(1.0)
        center = k.shape[0] // 2
        assert k[center, center] == k.max()

    def test_invalid_sigma_raises(self):
        with pytest.raises(ValueError):
            gaussian_kernel(0.0)

    def test_radius_override(self):
        assert gaussian_kernel(1.0, radius=2).shape == (5, 5)


class TestOpticalModel:
    def test_clear_field_images_to_one(self):
        model = OpticalModel()
        mask = np.ones((64, 64))
        aerial = model.aerial_image(mask, 8.0)
        # away from boundary effects the intensity is the clear-field 1.0
        assert aerial[32, 32] == pytest.approx(1.0, abs=1e-6)

    def test_dark_field_is_zero(self):
        aerial = OpticalModel().aerial_image(np.zeros((32, 32)), 8.0)
        np.testing.assert_allclose(aerial, 0.0)

    def test_intensity_bounds(self):
        clip = Clip(1024, [Rect(300, 100, 500, 900), Rect(600, 100, 800, 900)])
        mask = rasterize(clip, 128, "area")
        aerial = OpticalModel().aerial_image(mask, 8.0)
        assert aerial.min() >= 0.0
        assert aerial.max() <= 1.0 + 1e-9

    def test_blur_rounds_corners(self):
        """Peak intensity of a small feature is below clear field."""
        clip = Clip(1024, [Rect(450, 450, 570, 570)])
        mask = rasterize(clip, 128, "area")
        aerial = OpticalModel().aerial_image(mask, 8.0)
        assert aerial.max() < 0.95

    def test_defocus_reduces_contrast(self):
        clip = Clip(1024, [Rect(480, 100, 560, 900)])  # 80nm line
        mask = rasterize(clip, 128, "area")
        focus = OpticalModel().aerial_image(mask, 8.0)
        blur = OpticalModel(defocus_broadening=1.5).aerial_image(mask, 8.0)
        assert blur.max() < focus.max()

    def test_defocused_copy_preserves_other_fields(self):
        model = OpticalModel(wavelength_nm=248.0, na=0.9)
        blurred = model.defocused(1.3)
        assert blurred.wavelength_nm == 248.0
        assert blurred.na == 0.9
        assert blurred.defocus_broadening == 1.3

    def test_resolution_nm(self):
        assert OpticalModel(wavelength_nm=193.0, na=1.35).resolution_nm == (
            pytest.approx(142.96, abs=0.01)
        )

    def test_mismatched_kernel_spec_raises(self):
        with pytest.raises(ValueError):
            OpticalModel(kernel_scales=(0.2,), kernel_weights=(0.5, 0.5))

    def test_invalid_defocus_raises(self):
        with pytest.raises(ValueError):
            OpticalModel(defocus_broadening=0.0)

    def test_linearity_of_amplitude_not_intensity(self):
        """Intensity is quadratic in mask transmission: halving the mask
        quarters the single-kernel image (checked with one kernel)."""
        model = OpticalModel(kernel_scales=(0.3,), kernel_weights=(1.0,))
        mask = np.zeros((64, 64))
        mask[28:36, 28:36] = 1.0
        full = model.aerial_image(mask, 8.0)
        half = model.aerial_image(0.5 * mask, 8.0)
        np.testing.assert_allclose(half, 0.25 * full, atol=1e-12)
