"""Tests for the synthetic pattern generators."""

import numpy as np
import pytest

from repro.litho import PATTERN_FAMILIES, Technology, sample_clip
from repro.litho.patterns import (
    elbows,
    grating,
    line_end_pair,
    random_manhattan,
    via_array,
)


@pytest.mark.parametrize("name,generator", sorted(PATTERN_FAMILIES.items()))
class TestEveryFamily:
    def test_produces_geometry_in_window(self, rng, name, generator):
        tech = Technology()
        for _ in range(10):
            clip = generator(rng, tech)
            assert clip.size == tech.clip_size
            assert len(clip) >= 1
            for rect in clip.rects:
                assert 0 <= rect.x0 < rect.x1 <= tech.clip_size
                assert 0 <= rect.y0 < rect.y1 <= tech.clip_size

    def test_deterministic_given_seed(self, rng, name, generator):
        a = generator(np.random.default_rng(7), Technology())
        b = generator(np.random.default_rng(7), Technology())
        assert a.rects == b.rects

    def test_variety_across_draws(self, rng, name, generator):
        clips = [generator(rng, Technology()) for _ in range(8)]
        densities = {round(c.density(), 6) for c in clips}
        assert len(densities) > 1


class TestFamilySpecifics:
    def test_grating_mostly_parallel(self, rng):
        clip = grating(np.random.default_rng(3), Technology())
        # all rects of a grating share an orientation (before transpose):
        # widths or heights dominate consistently
        tall = sum(r.height >= r.width for r in clip.rects)
        assert tall == len(clip) or tall == 0 or len(clip) > 2

    def test_line_end_pair_has_facing_tips(self, rng):
        tech = Technology()
        clip = line_end_pair(np.random.default_rng(5), tech)
        assert len(clip) >= 2

    def test_via_array_squares(self, rng):
        tech = Technology()
        clip = via_array(np.random.default_rng(11), tech)
        for rect in clip.rects:
            assert rect.width == rect.height
            assert tech.via_min <= rect.width <= tech.via_max

    def test_elbows_nonempty(self, rng):
        assert len(elbows(np.random.default_rng(2), Technology())) >= 1

    def test_random_manhattan_wire_count(self, rng):
        clip = random_manhattan(np.random.default_rng(0), Technology())
        assert 1 <= len(clip) <= 12


class TestSampleClip:
    def test_uniform_sampling(self, rng):
        clips = [sample_clip(rng) for _ in range(20)]
        assert all(len(c) >= 1 for c in clips)

    def test_weighted_sampling(self, rng):
        clip = sample_clip(rng, weights={"via_array": 1.0})
        # only vias: all rects square
        assert all(r.width == r.height for r in clip.rects)

    def test_empty_weights_raise(self, rng):
        with pytest.raises(ValueError):
            sample_clip(rng, weights={"unknown": 1.0})

    def test_technology_respected(self, rng):
        tech = Technology(clip_size=512)
        clip = sample_clip(rng, tech)
        assert clip.size == 512
