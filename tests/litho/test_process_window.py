"""Tests for process-window analysis."""

import pytest

from repro.litho import Clip, LithographySimulator, Rect
from repro.litho.process_window import (
    dose_latitude,
    passes_at,
    process_window_area,
)
from repro.litho.resist import ProcessCorner, nominal_corner


@pytest.fixture(scope="module")
def simulator():
    return LithographySimulator()


@pytest.fixture(scope="module")
def robust_clip():
    """Wide isolated wire: prints across the whole window."""
    return Clip(1024, [Rect(380, 100, 640, 900)])


@pytest.fixture(scope="module")
def marginal_clip():
    """Narrow wire near the printability edge."""
    return Clip(1024, [Rect(480, 100, 552, 900)])


class TestPassesAt:
    def test_robust_passes_nominal(self, simulator, robust_clip):
        assert passes_at(simulator, robust_clip, nominal_corner())

    def test_tiny_via_fails(self, simulator):
        clip = Clip(1024, [Rect(490, 490, 540, 540)])
        assert not passes_at(
            simulator, clip, ProcessCorner(0.94, 1.18)
        )

    def test_tolerance_override(self, simulator, robust_clip):
        # an absurdly tight tolerance fails even the robust pattern
        assert not passes_at(simulator, robust_clip, nominal_corner(),
                             epe_tolerance_nm=1.0)


class TestDoseLatitude:
    def test_robust_has_wider_latitude(self, simulator, robust_clip,
                                       marginal_clip):
        robust = dose_latitude(simulator, robust_clip, resolution=0.04)
        marginal = dose_latitude(simulator, marginal_clip, resolution=0.04)
        assert robust >= marginal

    def test_failing_pattern_zero_latitude(self, simulator):
        clip = Clip(1024, [Rect(490, 490, 538, 538)])  # vanishing via
        assert dose_latitude(simulator, clip) == 0.0

    def test_bounded_by_max(self, simulator, robust_clip):
        latitude = dose_latitude(simulator, robust_clip,
                                 max_latitude=0.08, resolution=0.04)
        assert latitude <= 0.08


class TestWindowArea:
    def test_monotone_with_robustness(self, simulator, robust_clip,
                                      marginal_clip):
        robust = process_window_area(simulator, robust_clip, grid=3)
        marginal = process_window_area(simulator, marginal_clip, grid=3)
        assert robust >= marginal

    def test_in_unit_interval(self, simulator, robust_clip):
        area = process_window_area(simulator, robust_clip, grid=2)
        assert 0.0 <= area <= 1.0

    def test_invalid_grid_raises(self, simulator, robust_clip):
        with pytest.raises(ValueError):
            process_window_area(simulator, robust_clip, grid=1)

    def test_hotspot_label_consistent_with_window(self, simulator):
        """A pattern failing inside the default corner set has a window
        area below 1."""
        clip = Clip(1024, [Rect(400, 100, 520, 900),
                           Rect(550, 100, 670, 900)])  # bridging pair
        assert simulator.is_hotspot(clip)
        assert process_window_area(simulator, clip, grid=3) < 1.0
