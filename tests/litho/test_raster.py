"""Tests for clip rasterisation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.litho import Clip, Rect, rasterize, rasterize_plane
from repro.litho.raster import coverage_1d


class TestCoverage1D:
    def test_full_pixel(self):
        cov = coverage_1d(0.0, 4.0, 4, 1.0)
        np.testing.assert_allclose(cov, 1.0)

    def test_half_pixel(self):
        cov = coverage_1d(0.5, 1.0, 2, 1.0)
        np.testing.assert_allclose(cov, [0.5, 0.0])

    def test_spanning_fraction(self):
        cov = coverage_1d(0.25, 1.75, 2, 1.0)
        np.testing.assert_allclose(cov, [0.75, 0.75])


class TestRasterize:
    def test_aligned_rect_exact(self):
        clip = Clip(8, [Rect(2, 2, 6, 6)])
        image = rasterize(clip, 8, mode="area")
        assert image[2:6, 2:6].min() == 1.0
        assert image.sum() == pytest.approx(16.0)

    def test_area_preservation(self):
        """Total covered area survives rasterisation exactly (disjoint)."""
        clip = Clip(100, [Rect(3, 7, 45, 13), Rect(50, 50, 97, 93)])
        image = rasterize(clip, 64, mode="area")
        expected = sum(r.area for r in clip.rects) / 100**2
        assert image.mean() == pytest.approx(expected, abs=1e-12)

    def test_subpixel_features_keep_fraction(self):
        clip = Clip(64, [Rect(0, 0, 1, 64)])  # 1nm-wide sliver at 2nm/px
        image = rasterize(clip, 32, mode="area")
        np.testing.assert_allclose(image[:, 0], 0.5)

    def test_binary_mode_thresholds(self):
        clip = Clip(8, [Rect(0, 0, 8, 3)])  # covers 75% of bottom pixel row?
        image = rasterize(clip, 4, mode="binary")
        assert set(np.unique(image)) <= {0.0, 1.0}
        np.testing.assert_allclose(image[0], 1.0)  # fully covered row
        np.testing.assert_allclose(image[2], 0.0)

    def test_row_zero_is_bottom(self):
        clip = Clip(10, [Rect(0, 0, 10, 5)])  # lower half
        image = rasterize(clip, 10, mode="area")
        assert image[0].sum() == 10.0
        assert image[9].sum() == 0.0

    def test_invalid_mode_raises(self):
        with pytest.raises(ValueError):
            rasterize(Clip(10), 10, mode="grayscale")

    def test_empty_clip_is_blank(self):
        assert not rasterize(Clip(10), 16).any()

    def test_overlaps_clamped(self):
        clip = Clip(10, [Rect(0, 0, 10, 10), Rect(2, 2, 8, 8)])
        image = rasterize(clip, 10, mode="area")
        assert image.max() == 1.0


@settings(max_examples=30, deadline=None)
@given(
    x0=st.integers(0, 50), y0=st.integers(0, 50),
    w=st.integers(1, 50), h=st.integers(1, 50),
)
def test_flip_raster_commutes_property(x0, y0, w, h):
    """Property: rasterise-then-flip == flip-then-rasterise."""
    clip = Clip(100, [Rect(x0, y0, x0 + w, y0 + h)])
    image = rasterize(clip, 50, mode="area")
    flipped = rasterize(clip.flip_horizontal(), 50, mode="area")
    np.testing.assert_allclose(flipped, image[:, ::-1], atol=1e-12)


class TestRasterizePlane:
    def _layout(self, size=256, seed=7, n=40):
        rng = np.random.default_rng(seed)
        layout = Clip(size)
        for _ in range(n):
            x0 = int(rng.integers(0, size - 8))
            y0 = int(rng.integers(0, size - 8))
            layout.add(Rect(x0, y0, x0 + int(rng.integers(3, 70)),
                            y0 + int(rng.integers(3, 40))))
        return layout

    @pytest.mark.parametrize("mode", ["area", "binary"])
    @pytest.mark.parametrize("scale", [1, 4])
    def test_window_slices_bit_identical(self, mode, scale):
        """Aligned plane slices equal per-window rasterization exactly."""
        from repro.serve.service import extract_window

        layout = self._layout()
        window = 32 * scale  # 32-pixel windows at this scale
        pixels = window // scale
        plane = rasterize_plane(layout, float(scale), mode)
        assert plane.shape == (layout.size // scale,) * 2
        last = layout.size - window
        for x, y in [(0, 0), (64, 0), (0, last), (last, last), (64, 128)]:
            direct = rasterize(extract_window(layout, x, y, window),
                               pixels, mode)
            px, py = x // scale, y // scale
            view = plane[py : py + pixels, px : px + pixels]
            np.testing.assert_array_equal(view, direct)

    def test_full_plane_matches_rasterize(self):
        """At scale = size/pixels the plane equals plain rasterize."""
        layout = self._layout(size=128)
        np.testing.assert_array_equal(
            rasterize_plane(layout, 2.0, "area"), rasterize(layout, 64, "area")
        )

    def test_validation(self):
        layout = self._layout(size=100)
        with pytest.raises(ValueError):
            rasterize_plane(layout, 3.0)  # 3 does not divide 100
        with pytest.raises(ValueError):
            rasterize_plane(layout, 0.0)
        with pytest.raises(ValueError):
            rasterize_plane(layout, 4.0, mode="grayscale")


class TestRasterizeRegion:
    """Region rasters vs monolithic plane slices — the tile contract."""

    def _layout(self, size=256, seed=13, n=60):
        rng = np.random.default_rng(seed)
        layout = Clip(size)
        for _ in range(n):
            x0 = int(rng.integers(0, size - 8))
            y0 = int(rng.integers(0, size - 8))
            layout.add(Rect(x0, y0, x0 + int(rng.integers(3, 90)),
                            y0 + int(rng.integers(3, 50))))
        return layout

    def _check(self, layout, region, scale, mode):
        from repro.litho.raster import rasterize_region

        plane = rasterize_plane(layout, scale, mode)
        tile = rasterize_region(list(layout.rects), region, scale, mode)
        np.testing.assert_array_equal(
            tile,
            plane[region.y0 // scale : region.y1 // scale,
                  region.x0 // scale : region.x1 // scale],
        )

    @pytest.mark.parametrize("mode", ["area", "binary"])
    @pytest.mark.parametrize("scale", [1, 4])
    def test_interior_region_matches_plane_slice(self, mode, scale):
        self._check(self._layout(), Rect(32, 64, 160, 192), scale, mode)

    @pytest.mark.parametrize("mode", ["area", "binary"])
    def test_rects_straddling_region_borders(self, mode):
        """Geometry crossing the tile edge is clipped bit-identically."""
        layout = Clip(128, [
            Rect(20, 20, 80, 28),    # enters from the left
            Rect(56, 0, 64, 128),    # crosses top-to-bottom
            Rect(30, 60, 100, 68),   # exits to the right
            Rect(48, 48, 80, 80),    # fully inside
            Rect(0, 0, 16, 16),      # fully outside (below-left)
        ])
        self._check(layout, Rect(32, 32, 96, 96), 4, mode)

    @pytest.mark.parametrize("mode", ["area", "binary"])
    def test_region_clipped_at_layout_boundary(self, mode):
        """Corner regions: rects clipped by the layout edge line up."""
        layout = self._layout()
        size = layout.size
        for region in [Rect(0, 0, 64, 64), Rect(size - 64, 0, size, 64),
                       Rect(0, size - 64, 64, size),
                       Rect(size - 64, size - 64, size, size)]:
            self._check(layout, region, 4, mode)

    def test_halo_overlap_consistency(self):
        """Overlapping tile regions agree on their shared pixels."""
        from repro.litho.raster import rasterize_region

        layout = self._layout()
        rects = list(layout.rects)
        left = rasterize_region(rects, Rect(0, 0, 160, 256), 4, "binary")
        right = rasterize_region(rects, Rect(96, 0, 256, 256), 4, "binary")
        np.testing.assert_array_equal(
            left[:, 96 // 4 :], right[:, : (160 - 96) // 4]
        )

    def test_rect_touching_border_contributes_nothing(self):
        """A rect ending exactly at the region edge changes no pixel."""
        from repro.litho.raster import rasterize_region

        region = Rect(64, 64, 128, 128)
        touching = [Rect(0, 0, 64, 64), Rect(128, 64, 192, 128),
                    Rect(64, 128, 128, 192)]
        empty = rasterize_region([], region, 4, "area")
        with_touching = rasterize_region(touching, region, 4, "area")
        np.testing.assert_array_equal(empty, with_touching)
        assert with_touching.sum() == 0.0

    def test_subpixel_fraction_preserved_inside_region(self):
        from repro.litho.raster import rasterize_region

        # a 2nm sliver at 4nm/px: half-covered pixels inside the region
        tile = rasterize_region([Rect(64, 0, 66, 128)],
                                Rect(64, 0, 128, 128), 4, "area")
        np.testing.assert_allclose(tile[:, 0], 0.5)
        np.testing.assert_allclose(tile[:, 1:], 0.0)

    def test_validation(self):
        from repro.litho.raster import rasterize_region

        with pytest.raises(ValueError):  # region not scale-aligned
            rasterize_region([], Rect(2, 0, 66, 64), 4)
        with pytest.raises(ValueError):
            rasterize_region([], Rect(0, 0, 64, 64), 0)
        with pytest.raises(ValueError):
            rasterize_region([], Rect(0, 0, 64, 64), 4, mode="grayscale")
