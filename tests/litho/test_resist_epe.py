"""Tests for the resist model and printability analysis."""

import numpy as np
import pytest

from repro.litho import (
    Clip,
    LithographySimulator,
    ProcessCorner,
    Rect,
    analyze_contours,
    default_process_window,
    nominal_corner,
    print_contour,
)


class TestResist:
    def test_threshold_semantics(self):
        aerial = np.array([[0.1, 0.4], [0.35, 0.3]])
        printed = print_contour(aerial, threshold=0.35)
        np.testing.assert_array_equal(printed, [[False, True], [True, False]])

    def test_dose_scales_aerial(self):
        aerial = np.array([[0.3]])
        assert not print_contour(aerial, 0.35, dose=1.0)[0, 0]
        assert print_contour(aerial, 0.35, dose=1.2)[0, 0]

    def test_invalid_threshold_raises(self):
        with pytest.raises(ValueError):
            print_contour(np.zeros((2, 2)), threshold=0.0)

    def test_process_window_contains_nominal(self):
        corners = default_process_window()
        assert nominal_corner() in corners
        assert len(corners) == 3

    def test_invalid_corner_raises(self):
        with pytest.raises(ValueError):
            ProcessCorner(dose=0.0)


class TestAnalyzeContours:
    def test_perfect_print_is_clean(self):
        target = np.zeros((32, 32), bool)
        target[8:24, 8:24] = True
        report = analyze_contours(target, target.copy(), pixel_nm=8.0)
        assert report.max_epe_nm == 0.0
        assert not report.bridged and not report.broken

    def test_bridge_detected(self):
        """Two target shapes printing as one blob is a bridge."""
        target = np.zeros((32, 32), bool)
        target[10:22, 5:14] = True
        target[10:22, 18:27] = True
        printed = np.zeros_like(target)
        printed[10:22, 5:27] = True  # merged
        report = analyze_contours(target, printed, 8.0)
        assert report.bridged

    def test_break_detected(self):
        """One target shape printing in two pieces is a break."""
        target = np.zeros((32, 32), bool)
        target[5:27, 14:18] = True
        printed = target.copy()
        printed[15:17, :] = False  # severed
        report = analyze_contours(target, printed, 8.0)
        assert report.broken

    def test_vanished_feature_is_broken(self):
        target = np.zeros((16, 16), bool)
        target[6:10, 6:10] = True
        report = analyze_contours(target, np.zeros_like(target), 8.0)
        assert report.broken

    def test_epe_measures_edge_shift(self):
        target = np.zeros((32, 32), bool)
        target[8:24, 8:16] = True
        printed = np.zeros_like(target)
        printed[8:24, 8:14] = True  # right edge pulled in by 2 px
        report = analyze_contours(target, printed, pixel_nm=10.0)
        assert report.max_epe_nm == pytest.approx(20.0)
        assert not report.bridged and not report.broken

    def test_is_hotspot_thresholds(self):
        from repro.litho.epe import PrintabilityReport

        clean = PrintabilityReport(max_epe_nm=10.0, bridged=False, broken=False)
        assert not clean.is_hotspot(epe_tolerance_nm=20.0)
        assert clean.is_hotspot(epe_tolerance_nm=5.0)
        topo = PrintabilityReport(max_epe_nm=0.0, bridged=True, broken=False)
        assert topo.is_hotspot(epe_tolerance_nm=1000.0)


class TestLithographySimulator:
    def test_safe_pattern_not_hotspot(self):
        """A wide isolated line prints cleanly."""
        clip = Clip(1024, [Rect(400, 100, 620, 900)])  # 220nm wide
        sim = LithographySimulator()
        assert not sim.is_hotspot(clip)

    def test_tiny_via_is_hotspot(self):
        """A sub-resolution via vanishes somewhere in the process window."""
        clip = Clip(1024, [Rect(490, 490, 540, 540)])  # 50nm via
        sim = LithographySimulator()
        report = sim.analyze(clip)
        assert report.broken
        assert sim.is_hotspot(clip)

    def test_tight_space_bridges(self):
        """Parallel wires at sub-minimum spacing short somewhere in the
        process window."""
        clip = Clip(1024, [
            Rect(400, 100, 520, 900),
            Rect(550, 100, 670, 900),  # 30nm space
        ])
        sim = LithographySimulator()
        assert sim.analyze(clip).bridged

    def test_relaxed_space_does_not_bridge(self):
        clip = Clip(1024, [
            Rect(400, 100, 520, 900),
            Rect(640, 100, 760, 900),  # 120nm space
        ])
        sim = LithographySimulator()
        assert not sim.analyze(clip).bridged

    def test_severity_ordering_prefers_topology(self):
        from repro.litho.epe import PrintabilityReport

        epe_only = PrintabilityReport(max_epe_nm=500.0, bridged=False,
                                      broken=False)
        topo = PrintabilityReport(max_epe_nm=0.0, bridged=True, broken=False)
        sim = LithographySimulator
        assert sim._severity(topo) > sim._severity(epe_only)

    def test_deterministic(self):
        clip = Clip(1024, [Rect(450, 100, 560, 900)])
        sim = LithographySimulator()
        a = sim.analyze(clip)
        b = sim.analyze(clip)
        assert (a.max_epe_nm, a.bridged, a.broken) == (
            b.max_epe_nm, b.bridged, b.broken
        )
