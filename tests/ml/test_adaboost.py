"""Tests for the AdaBoost ensemble."""

import numpy as np
import pytest

from repro.ml import AdaBoost, DecisionTree


def ring_problem(rng, n=300):
    """Inside-ring vs outside-ring: stumps are weak, boosting wins."""
    x = rng.uniform(-1, 1, size=(n, 2))
    labels = (np.linalg.norm(x, axis=1) < 0.6).astype(int)
    return x, labels


class TestBoosting:
    def test_beats_single_stump(self, rng):
        x, y = ring_problem(rng)
        stump = DecisionTree(max_depth=1).fit(x, y)
        boost = AdaBoost(n_estimators=40, max_depth=1).fit(x, y)
        assert (boost.predict(x) == y).mean() > (stump.predict(x) == y).mean()

    def test_training_accuracy_high(self, rng):
        x, y = ring_problem(rng)
        boost = AdaBoost(n_estimators=40, max_depth=2).fit(x, y)
        assert (boost.predict(x) == y).mean() > 0.93

    def test_decision_scores_sign_match_predictions(self, rng):
        x, y = ring_problem(rng, n=100)
        boost = AdaBoost(n_estimators=10, max_depth=2).fit(x, y)
        scores = boost.decision_function(x)
        np.testing.assert_array_equal(boost.predict(x), (scores > 0).astype(int))

    def test_threshold_trades_recall(self, rng):
        x, y = ring_problem(rng)
        boost = AdaBoost(n_estimators=20, max_depth=1).fit(x, y)
        recall_strict = (boost.predict(x, threshold=0.5)[y == 1] == 1).mean()
        recall_loose = (boost.predict(x, threshold=-0.5)[y == 1] == 1).mean()
        assert recall_loose >= recall_strict

    def test_perfect_weak_learner_short_circuits(self):
        features = np.array([[0.0], [1.0], [0.1], [0.9]])
        labels = np.array([0, 1, 0, 1])
        boost = AdaBoost(n_estimators=25, max_depth=1).fit(features, labels)
        assert len(boost.trees_) == 1  # first round is already perfect
        np.testing.assert_array_equal(boost.predict(features), labels)

    def test_balanced_class_weight(self):
        features = np.vstack([np.zeros((20, 1)), np.ones((2, 1))])
        labels = np.array([0] * 20 + [1] * 2)
        boost = AdaBoost(n_estimators=5, max_depth=1,
                         class_weight="balanced").fit(features, labels)
        assert boost.predict(np.ones((1, 1)))[0] == 1

    def test_invalid_params_raise(self):
        with pytest.raises(ValueError):
            AdaBoost(n_estimators=0)
        with pytest.raises(ValueError):
            AdaBoost(class_weight="nope")

    def test_decision_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            AdaBoost().decision_function(np.zeros((1, 1)))

    def test_degenerate_labels_fallback(self):
        features = np.random.default_rng(0).random((10, 2))
        labels = np.zeros(10, dtype=int)
        boost = AdaBoost(n_estimators=5).fit(features, labels)
        np.testing.assert_array_equal(boost.predict(features), labels)
