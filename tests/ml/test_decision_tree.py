"""Tests for the CART decision tree."""

import numpy as np
import pytest

from repro.ml import DecisionTree


class TestFitting:
    def test_perfect_split_1d(self):
        features = np.array([[0.0], [0.1], [0.9], [1.0]])
        labels = np.array([0, 0, 1, 1])
        tree = DecisionTree(max_depth=1).fit(features, labels)
        np.testing.assert_array_equal(tree.predict(features), labels)

    def test_xor_needs_depth(self, rng):
        """A stump cannot express XOR; a depth-3 tree can (depth 2 only
        suffices when the root split lands exactly on the XOR axis)."""
        features = rng.random((200, 2))
        labels = ((features[:, 0] > 0.5) ^ (features[:, 1] > 0.5)).astype(int)
        stump = DecisionTree(max_depth=1).fit(features, labels)
        deep = DecisionTree(max_depth=3).fit(features, labels)
        assert (stump.predict(features) == labels).mean() < 0.75
        assert (deep.predict(features) == labels).mean() > 0.9

    def test_respects_sample_weights(self):
        """Up-weighting the minority flips the majority-vote leaf."""
        features = np.zeros((10, 1))  # indistinguishable features
        labels = np.array([1] + [0] * 9)
        unweighted = DecisionTree(max_depth=1).fit(features, labels)
        assert unweighted.predict(features)[0] == 0
        weights = np.array([100.0] + [1.0] * 9)
        weighted = DecisionTree(max_depth=1).fit(features, labels, weights)
        assert weighted.predict(features)[0] == 1

    def test_pure_node_stops_early(self):
        features = np.array([[0.0], [1.0]])
        labels = np.array([1, 1])
        tree = DecisionTree(max_depth=5).fit(features, labels)
        np.testing.assert_array_equal(tree.predict(features), [1, 1])

    def test_min_samples_leaf(self, rng):
        features = rng.random((20, 1))
        labels = (features[:, 0] > 0.5).astype(int)
        tree = DecisionTree(max_depth=3, min_samples_leaf=10)
        tree.fit(features, labels)
        # leaves of >= 10 samples: at most one split on 20 samples
        assert (tree.predict(features) == labels).mean() >= 0.5

    def test_invalid_depth_raises(self):
        with pytest.raises(ValueError):
            DecisionTree(max_depth=0)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTree().predict(np.zeros((1, 1)))

    def test_multifeature_selects_informative_column(self, rng):
        noise = rng.random((100, 3))
        signal = rng.random((100, 1))
        labels = (signal[:, 0] > 0.5).astype(int)
        features = np.hstack([noise, signal])
        tree = DecisionTree(max_depth=1).fit(features, labels)
        assert (tree.predict(features) == labels).mean() > 0.9
        assert tree._root.feature == 3

    def test_quantile_thresholds_on_many_values(self, rng):
        features = rng.normal(size=(500, 1))
        labels = (features[:, 0] > 0.3).astype(int)
        tree = DecisionTree(max_depth=1, n_thresholds=32).fit(features, labels)
        assert (tree.predict(features) == labels).mean() > 0.95
