"""Tests for the online logistic learner."""

import numpy as np
import pytest

from repro.ml import OnlineLogisticClassifier


def blobs(rng, n=200):
    x0 = rng.normal(loc=-1.0, size=(n // 2, 3))
    x1 = rng.normal(loc=1.0, size=(n // 2, 3))
    x = np.vstack([x0, x1])
    y = np.array([0] * (n // 2) + [1] * (n // 2))
    order = rng.permutation(n)
    return x[order], y[order]


class TestLearning:
    def test_learns_separable_blobs(self, rng):
        x, y = blobs(rng)
        clf = OnlineLogisticClassifier(3, lr=0.5)
        clf.fit(x, y, epochs=10, rng=rng)
        assert (clf.predict(x) == y).mean() > 0.9

    def test_streaming_partial_fit_improves(self, rng):
        x, y = blobs(rng)
        clf = OnlineLogisticClassifier(3, lr=0.5)
        before = (clf.predict(x) == y).mean()
        for start in range(0, len(y), 20):
            clf.partial_fit(x[start : start + 20], y[start : start + 20])
        after = (clf.predict(x) == y).mean()
        assert after > before

    def test_probabilities_in_unit_interval(self, rng):
        x, y = blobs(rng)
        clf = OnlineLogisticClassifier(3).fit(x, y, epochs=3, rng=rng)
        probs = clf.predict_proba(x)
        assert (0.0 <= probs).all() and (probs <= 1.0).all()

    def test_positive_weight_raises_recall(self, rng):
        """Heavier hotspot weighting must not lower recall on an
        imbalanced stream."""
        x = rng.normal(size=(400, 2))
        y = (x[:, 0] + 0.5 * rng.normal(size=400) > 1.2).astype(int)
        plain = OnlineLogisticClassifier(2, positive_weight=1.0)
        plain.fit(x, y, epochs=8, rng=np.random.default_rng(0))
        heavy = OnlineLogisticClassifier(2, positive_weight=10.0)
        heavy.fit(x, y, epochs=8, rng=np.random.default_rng(0))
        recall = lambda clf: (clf.predict(x)[y == 1] == 1).mean()
        assert recall(heavy) >= recall(plain)

    def test_threshold_semantics(self, rng):
        x, y = blobs(rng)
        clf = OnlineLogisticClassifier(3).fit(x, y, epochs=5, rng=rng)
        flagged_low = clf.predict(x, threshold=0.1).sum()
        flagged_high = clf.predict(x, threshold=0.9).sum()
        assert flagged_low >= flagged_high

    def test_extreme_logits_stable(self):
        clf = OnlineLogisticClassifier(1)
        clf.weights[...] = 1000.0
        probs = clf.predict_proba(np.array([[1.0], [-1.0]]))
        assert np.isfinite(probs).all()

    def test_invalid_dim_raises(self):
        with pytest.raises(ValueError):
            OnlineLogisticClassifier(0)

    def test_l2_shrinks_weights(self, rng):
        x, y = blobs(rng)
        loose = OnlineLogisticClassifier(3, l2=0.0)
        tight = OnlineLogisticClassifier(3, l2=1.0)
        loose.fit(x, y, epochs=5, rng=np.random.default_rng(1))
        tight.fit(x, y, epochs=5, rng=np.random.default_rng(1))
        assert np.linalg.norm(tight.weights) < np.linalg.norm(loose.weights)
