"""Tests for the SVM trainers."""

import numpy as np
import pytest

from repro.ml import KernelSVM, LinearSVM, polynomial_kernel, rbf_kernel


def blobs(rng, n=160, gap=4.0):
    x0 = rng.normal(loc=-gap / 2, size=(n // 2, 2))
    x1 = rng.normal(loc=+gap / 2, size=(n // 2, 2))
    x = np.vstack([x0, x1])
    y = np.array([0] * (n // 2) + [1] * (n // 2))
    order = rng.permutation(n)
    return x[order], y[order]


def ring(rng, n=200):
    x = rng.uniform(-1.5, 1.5, size=(n, 2))
    y = (np.linalg.norm(x, axis=1) < 0.8).astype(int)
    return x, y


class TestKernels:
    def test_rbf_diagonal_ones(self, rng):
        a = rng.normal(size=(5, 3))
        gram = rbf_kernel(a, a, gamma=0.5)
        np.testing.assert_allclose(np.diag(gram), 1.0)

    def test_rbf_symmetric_psd_range(self, rng):
        a = rng.normal(size=(6, 2))
        gram = rbf_kernel(a, a)
        np.testing.assert_allclose(gram, gram.T, atol=1e-12)
        assert (gram > 0).all() and (gram <= 1.0 + 1e-12).all()

    def test_polynomial_known_value(self):
        a = np.array([[1.0, 2.0]])
        b = np.array([[3.0, 4.0]])
        gram = polynomial_kernel(a, b, degree=2, coef0=1.0)
        assert gram[0, 0] == pytest.approx((11 + 1) ** 2)


class TestLinearSVM:
    def test_separable_blobs(self, rng):
        x, y = blobs(rng)
        svm = LinearSVM(epochs=15).fit(x, y, rng=rng)
        assert (svm.predict(x) == y).mean() > 0.95

    def test_margin_sign_convention(self, rng):
        x, y = blobs(rng)
        svm = LinearSVM(epochs=15).fit(x, y, rng=rng)
        scores = svm.decision_function(x)
        assert scores[y == 1].mean() > scores[y == 0].mean()

    def test_positive_weight_raises_recall(self, rng):
        x = rng.normal(size=(300, 2))
        y = (x[:, 0] > 1.0).astype(int)
        plain = LinearSVM(epochs=10).fit(x, y, rng=np.random.default_rng(0))
        heavy = LinearSVM(epochs=10, positive_weight=10.0).fit(
            x, y, rng=np.random.default_rng(0))
        recall = lambda m: (m.predict(x)[y == 1] == 1).mean()
        assert recall(heavy) >= recall(plain)

    def test_invalid_lambda_raises(self):
        with pytest.raises(ValueError):
            LinearSVM(lam=0.0)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            LinearSVM().decision_function(np.zeros((1, 2)))


class TestKernelSVM:
    def test_rbf_solves_ring(self, rng):
        """The nonlinear case a linear SVM cannot solve."""
        x, y = ring(rng)
        linear = LinearSVM(epochs=15).fit(x, y, rng=rng)
        kernel = KernelSVM(kernel="rbf", gamma=2.0, passes=15).fit(x, y)
        assert (linear.predict(x) == y).mean() < 0.8
        assert (kernel.predict(x) == y).mean() > 0.9

    def test_poly_kernel_runs(self, rng):
        x, y = blobs(rng, n=80)
        svm = KernelSVM(kernel="poly", degree=2, passes=10).fit(x, y)
        assert (svm.predict(x) == y).mean() > 0.9

    def test_support_vector_count_bounded(self, rng):
        x, y = blobs(rng, n=100, gap=4.0)  # widely separated
        svm = KernelSVM(kernel="rbf", gamma=1.0, passes=15).fit(x, y)
        assert 0 < svm.n_support <= 100

    def test_dual_constraints_hold(self, rng):
        """Support coefficients stay inside their box."""
        x, y = ring(rng, n=120)
        svm = KernelSVM(c=1.5, kernel="rbf", gamma=2.0,
                        positive_weight=2.0).fit(x, y)
        magnitudes = np.abs(svm._alpha_signs)
        assert (magnitudes <= 1.5 * 2.0 + 1e-8).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            KernelSVM(c=0.0)
        with pytest.raises(ValueError):
            KernelSVM(kernel="sigmoid")

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            KernelSVM().decision_function(np.zeros((1, 2)))
