"""Tests for the model zoo: architecture audits per Figure 2."""

import numpy as np
import pytest

from repro.models import (
    bnn_resnet8,
    bnn_resnet12,
    bnn_resnet18,
    build_bnn_resnet,
    build_resnet,
    count_network_layers,
    dac17_cnn,
    resnet12,
    resnet18,
    summarize,
)


class TestLayerCounts:
    """The paper's depth accounting: 12 layers, 'fewer than 20'."""

    def test_bnn_resnet12_has_12_layers(self):
        assert count_network_layers(bnn_resnet12(seed=0)) == 12

    def test_bnn_resnet8_has_8_layers(self):
        assert count_network_layers(bnn_resnet8(seed=0)) == 8

    def test_bnn_resnet18_has_18_layers(self):
        assert count_network_layers(bnn_resnet18(seed=0)) == 18

    def test_all_variants_under_20_layers(self):
        for model in (bnn_resnet8(seed=0), bnn_resnet12(seed=0),
                      bnn_resnet18(seed=0)):
            assert count_network_layers(model) < 20

    def test_float_twin_matches(self):
        assert count_network_layers(resnet12(seed=0)) == 12
        assert count_network_layers(resnet18(seed=0)) == 18


class TestFilterProgression:
    def test_filters_nondecreasing_with_depth(self):
        """Section 3.1: 'the deeper a layer is, the more filters'."""
        infos = [i for i in summarize(bnn_resnet12(seed=0))
                 if i.kind == "binary_conv" and not i.shortcut]
        widths = [info.shape[0] for info in infos]
        assert widths == sorted(widths)

    def test_shortcuts_are_1x1(self):
        infos = summarize(bnn_resnet12(seed=0))
        for info in infos:
            if info.shortcut:
                assert info.shape[2:] == (1, 1)

    def test_main_path_convs_are_3x3(self):
        infos = summarize(bnn_resnet12(seed=0))
        for info in infos:
            if info.kind == "binary_conv" and not info.shortcut:
                assert info.shape[2:] == (3, 3)

    def test_param_count_matches_module_sum(self):
        model = bnn_resnet12(seed=0)
        assert sum(i.params for i in summarize(model)) == model.num_parameters() - (
            # batch norms are not conv/dense layers: exclude their params
            sum(p.size for name, p in model.named_parameters()
                if "gamma" in name or "beta" in name)
        )


class TestForwardShapes:
    @pytest.mark.parametrize("size", [32, 64, 128])
    def test_bnn_resnet12_output(self, rng, size):
        model = bnn_resnet12(seed=0, base_width=4)
        out = model.forward(rng.normal(size=(2, 1, size, size)))
        assert out.shape == (2, 2)

    def test_stem_stride_halves_maps(self, rng):
        model = build_bnn_resnet((4, 8), seed=0, stem_stride=2)
        out = model.forward(rng.normal(size=(1, 1, 32, 32)))
        assert out.shape == (1, 2)

    def test_trainable_end_to_end(self, rng):
        """One full forward/backward pass touches every parameter."""
        model = bnn_resnet8(seed=0, base_width=4)
        x = rng.normal(size=(2, 1, 16, 16))
        out = model.forward(x, training=True)
        model.backward(np.ones_like(out))
        grads = [np.abs(p.grad).sum() for p in model.parameters()]
        assert sum(g > 0 for g in grads) > len(grads) * 0.9

    def test_float_resnet_forward(self, rng):
        model = build_resnet((4, 8), seed=0)
        out = model.forward(rng.normal(size=(2, 1, 16, 16)), training=True)
        assert out.shape == (2, 2)


class TestBuilders:
    def test_empty_channels_raises(self):
        with pytest.raises(ValueError):
            build_bnn_resnet(())

    def test_blocks_mismatch_raises(self):
        with pytest.raises(ValueError):
            build_bnn_resnet((4, 8), blocks_per_stage=(1,))

    def test_float_builder_validation(self):
        with pytest.raises(ValueError):
            build_resnet((), seed=0)
        with pytest.raises(ValueError):
            build_resnet((4,), blocks_per_stage=(1, 1))

    def test_seed_reproducibility(self, rng):
        a = bnn_resnet12(seed=42)
        b = bnn_resnet12(seed=42)
        x = rng.normal(size=(1, 1, 32, 32))
        np.testing.assert_array_equal(a.forward(x), b.forward(x))

    def test_different_seeds_differ(self, rng):
        a = bnn_resnet12(seed=1)
        b = bnn_resnet12(seed=2)
        x = rng.normal(size=(1, 1, 32, 32))
        assert not np.allclose(a.forward(x), b.forward(x))


class TestDAC17CNN:
    def test_forward_shape(self, rng):
        model = dac17_cnn(8, 8, seed=0)
        out = model.forward(rng.normal(size=(3, 8, 8, 8)))
        assert out.shape == (3, 2)

    def test_indivisible_size_raises(self):
        with pytest.raises(ValueError):
            dac17_cnn(8, 10)

    def test_trains_one_step(self, rng):
        model = dac17_cnn(4, 8, stage_widths=(4, 8), hidden=16, seed=0)
        x = rng.normal(size=(4, 4, 8, 8))
        out = model.forward(x, training=True)
        model.backward(np.ones_like(out))
        assert any(np.abs(p.grad).sum() > 0 for p in model.parameters())
