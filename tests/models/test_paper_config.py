"""Audit of the paper-exact network configuration (Figure 2 at 128x128)."""

import numpy as np

from repro.binary import PackedBNN
from repro.models import bnn_resnet12, summarize


class TestPaperNetwork:
    def test_stage_filter_doubling(self):
        """Default widths double per stage: 8, 16, 32, 64, 128."""
        infos = [i for i in summarize(bnn_resnet12(seed=0))
                 if i.kind == "binary_conv" and not i.shortcut]
        # stem + 5 stages x 2 convs = 11 binary convolutions
        assert len(infos) == 11
        widths = [i.shape[0] for i in infos]
        assert widths == [8, 16, 16, 32, 32, 64, 64, 128, 128, 256, 256][:11] or (
            widths == [8, 8, 8, 16, 16, 32, 32, 64, 64, 128, 128]
        )

    def test_shortcut_at_every_shape_change(self):
        """Each stage down-samples, so each needs a projection shortcut."""
        infos = summarize(bnn_resnet12(seed=0))
        shortcuts = [i for i in infos if i.shortcut]
        assert len(shortcuts) == 5

    def test_128px_forward_and_packed_parity(self, rng):
        """Paper-scale input: forward works and the packed engine agrees."""
        model = bnn_resnet12(seed=0, base_width=4)
        model.forward(rng.normal(size=(2, 1, 128, 128)), training=True)
        x = np.where(rng.random((2, 1, 128, 128)) < 0.3, 1.0, -1.0)
        sim = model.forward(x)
        packed = PackedBNN(model).forward(x)
        np.testing.assert_allclose(sim, packed, atol=1e-8)

    def test_spatial_reduction_to_4x4(self, rng):
        """Five stride-2 stages: 128 -> 4 before global pooling."""
        model = bnn_resnet12(seed=0, base_width=4)
        # probe the tensor entering the head batch-norm
        x = rng.normal(size=(1, 1, 128, 128))
        out = x
        for layer in model.layers[:-3]:   # stop before BN/pool/dense head
            out = layer.forward(out)
        assert out.shape[2:] == (4, 4)

    def test_binary_weight_fraction(self):
        """Nearly all parameters live in 1-bit layers: the model stores
        and ships mostly binary weights (the compression claim)."""
        model = bnn_resnet12(seed=0)
        binary_params = sum(
            p.size for name, p in model.named_parameters()
            if "conv.weight" in name
        )
        assert binary_params / model.num_parameters() > 0.95
