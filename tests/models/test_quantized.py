"""Tests for the quantized residual-network builders."""

import numpy as np
import pytest

from repro.models import build_quantized_resnet


class TestQuantizedResnets:
    @pytest.mark.parametrize("precision", ["int8", "ternary"])
    def test_forward_shape(self, rng, precision):
        model = build_quantized_resnet(precision, (4, 8), seed=0)
        out = model.forward(rng.normal(size=(2, 1, 16, 16)))
        assert out.shape == (2, 2)

    @pytest.mark.parametrize("precision", ["int8", "ternary"])
    def test_trainable(self, rng, precision):
        model = build_quantized_resnet(precision, (4, 8), seed=0)
        x = rng.normal(size=(2, 1, 16, 16))
        out = model.forward(x, training=True)
        model.backward(np.ones_like(out))
        grads = [np.abs(p.grad).sum() for p in model.parameters()]
        assert sum(g > 0 for g in grads) > len(grads) * 0.8

    def test_learns_toy_signal(self, rng):
        """A quantized net must separate bright from dark images."""
        from repro.nn import ArrayDataset, DataLoader, NAdam, Trainer

        x = np.zeros((40, 1, 16, 16))
        y = np.zeros(40, dtype=np.int64)
        x[20:, :, 4:12, 4:12] = 1.0
        y[20:] = 1
        x = 2 * x - 1 + 0.1 * rng.normal(size=x.shape)
        model = build_quantized_resnet("ternary", (4, 8), seed=0)
        trainer = Trainer(model, NAdam(model.parameters(), lr=0.005))
        loader = DataLoader(ArrayDataset(x, y), 8,
                            rng=np.random.default_rng(0))
        trainer.fit(loader, epochs=8)
        pred = model.forward(x).argmax(1)
        assert (pred == y).mean() > 0.8

    def test_invalid_precision_raises(self):
        with pytest.raises(ValueError):
            build_quantized_resnet("fp4", (4,))

    def test_empty_channels_raises(self):
        with pytest.raises(ValueError):
            build_quantized_resnet("int8", ())

    def test_stem_stride(self, rng):
        model = build_quantized_resnet("int8", (4,), seed=0, stem_stride=2)
        out = model.forward(rng.normal(size=(1, 1, 16, 16)))
        assert out.shape == (1, 2)
