"""Tests for callbacks, warmup scheduling and the weighted loss."""

import numpy as np
import pytest

from repro.nn import (
    BestWeightsKeeper,
    Dense,
    EarlyStopping,
    LinearWarmup,
    Parameter,
    ReduceLROnPlateau,
    Sequential,
    SGD,
    SoftmaxCrossEntropy,
    WeightedCrossEntropy,
)


def make_opt(lr=1.0):
    return SGD([Parameter(np.zeros(1))], lr=lr)


class TestEarlyStopping:
    def test_stops_after_patience(self):
        stopper = EarlyStopping(patience=2)
        assert not stopper.step(1.0)
        assert not stopper.step(1.0)   # bad epoch 1
        assert stopper.step(1.0)       # bad epoch 2 -> stop

    def test_improvement_resets(self):
        stopper = EarlyStopping(patience=2)
        stopper.step(1.0)
        stopper.step(1.0)
        assert not stopper.step(0.5)   # improvement
        assert not stopper.step(0.5)
        assert stopper.step(0.5)

    def test_min_delta(self):
        stopper = EarlyStopping(patience=1, min_delta=0.1)
        stopper.step(1.0)
        assert stopper.step(0.95)      # <0.1 better: counts as bad

    def test_invalid_patience_raises(self):
        with pytest.raises(ValueError):
            EarlyStopping(patience=0)


class TestBestWeightsKeeper:
    def test_restores_best(self, rng):
        model = Sequential(Dense(2, 2, rng=rng))
        keeper = BestWeightsKeeper(model)
        assert keeper.step(1.0)
        best_weights = model.layers[0].weight.data.copy()
        model.layers[0].weight.data += 5.0
        assert not keeper.step(2.0)    # worse: no snapshot
        keeper.restore()
        np.testing.assert_array_equal(
            model.layers[0].weight.data, best_weights
        )

    def test_restore_without_snapshot_raises(self, rng):
        keeper = BestWeightsKeeper(Sequential(Dense(2, 2, rng=rng)))
        with pytest.raises(RuntimeError):
            keeper.restore()


class TestLinearWarmup:
    def test_ramps_to_target(self):
        opt = make_opt(lr=1.0)
        sched = LinearWarmup(opt, warmup_epochs=4, start_factor=0.2)
        assert opt.lr == pytest.approx(0.2)
        lrs = []
        for _ in range(4):
            sched.step()
            lrs.append(opt.lr)
        assert lrs[-1] == pytest.approx(1.0)
        assert lrs == sorted(lrs)

    def test_hands_over_to_inner_scheduler(self):
        opt = make_opt(lr=1.0)
        inner = ReduceLROnPlateau(opt, factor=0.5, patience=0)
        sched = LinearWarmup(opt, warmup_epochs=1, after=inner)
        sched.step(1.0)                # warmup epoch
        assert opt.lr == pytest.approx(1.0)
        sched.step(1.0)                # inner sees first loss
        assert sched.step(1.0)         # plateau -> inner decays
        assert opt.lr == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            LinearWarmup(make_opt(), warmup_epochs=0)
        with pytest.raises(ValueError):
            LinearWarmup(make_opt(), warmup_epochs=2, start_factor=0.0)


class TestPlateauNoneSignal:
    def test_none_is_noop(self):
        opt = make_opt()
        sched = ReduceLROnPlateau(opt, factor=0.5, patience=0)
        assert not sched.step(None)
        assert opt.lr == 1.0


class TestWeightedCrossEntropy:
    def test_equal_weights_match_unweighted(self, rng):
        logits = rng.normal(size=(6, 2))
        labels = rng.integers(0, 2, size=6)
        weighted = WeightedCrossEntropy(np.array([1.0, 1.0]))
        plain = SoftmaxCrossEntropy()
        assert weighted.forward(logits, labels) == pytest.approx(
            plain.forward(logits, labels)
        )
        np.testing.assert_allclose(weighted.backward(), plain.backward())

    def test_upweighted_class_dominates_loss(self, rng):
        logits = np.zeros((2, 2))
        labels = np.array([0, 1])
        loss_fn = WeightedCrossEntropy(np.array([1.0, 10.0]))
        loss_fn.forward(logits, labels)
        grad = loss_fn.backward()
        # the hotspot row's gradient is 10x the non-hotspot row's
        assert np.abs(grad[1]).sum() == pytest.approx(
            10 * np.abs(grad[0]).sum()
        )

    def test_gradient_matches_finite_difference(self, rng):
        from ..conftest import finite_difference

        logits = rng.normal(size=(4, 2))
        labels = np.array([0, 1, 1, 0])
        loss_fn = WeightedCrossEntropy(np.array([1.0, 3.0]))
        loss_fn.forward(logits, labels)
        grad = loss_fn.backward()

        def f(z):
            inner = WeightedCrossEntropy(np.array([1.0, 3.0]))
            return np.array([inner.forward(z, labels)])

        num = finite_difference(f, logits.copy(), np.array([1.0]))
        np.testing.assert_allclose(grad, num, atol=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            WeightedCrossEntropy(np.array([1.0, -1.0]))
        loss_fn = WeightedCrossEntropy(np.array([1.0, 1.0, 1.0]))
        with pytest.raises(ValueError):
            loss_fn.forward(np.zeros((2, 2)), np.array([0, 1]))
