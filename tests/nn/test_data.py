"""Tests for datasets, loaders and augmentation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import ArrayDataset, DataLoader, RandomFlip, train_val_split
from repro.nn.data import balanced_weights, capture_rng_state, restore_rng_state


def small_dataset(n=10, rng=None):
    rng = rng if rng is not None else np.random.default_rng(0)
    return ArrayDataset(
        rng.normal(size=(n, 1, 4, 4)), rng.integers(0, 2, size=n)
    )


class TestArrayDataset:
    def test_length(self):
        assert len(small_dataset(7)) == 7

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((3, 1, 2, 2)), np.zeros(4))

    def test_subset(self, rng):
        ds = small_dataset(10, rng)
        sub = ds.subset(np.array([1, 3]))
        assert len(sub) == 2
        np.testing.assert_array_equal(sub.images[0], ds.images[1])

    def test_with_labels_keeps_images(self, rng):
        ds = small_dataset(4, rng)
        soft = ds.with_labels(np.zeros((4, 2)))
        assert soft.images is ds.images
        assert soft.labels.shape == (4, 2)


class TestDataLoader:
    def test_covers_dataset_once(self, rng):
        ds = ArrayDataset(np.arange(10).reshape(10, 1, 1, 1).astype(float),
                          np.arange(10))
        loader = DataLoader(ds, batch_size=3, rng=rng)
        seen = np.concatenate([labels for _, labels in loader])
        assert sorted(seen.tolist()) == list(range(10))

    def test_batch_sizes(self, rng):
        loader = DataLoader(small_dataset(10), batch_size=4, rng=rng)
        sizes = [img.shape[0] for img, _ in loader]
        assert sizes == [4, 4, 2]
        assert len(loader) == 3

    def test_drop_last(self, rng):
        loader = DataLoader(small_dataset(10), batch_size=4, rng=rng,
                            drop_last=True)
        sizes = [img.shape[0] for img, _ in loader]
        assert sizes == [4, 4]
        assert len(loader) == 2

    def test_no_shuffle_preserves_order(self):
        ds = ArrayDataset(np.zeros((5, 1, 1, 1)), np.arange(5))
        loader = DataLoader(ds, batch_size=2, shuffle=False)
        seen = np.concatenate([labels for _, labels in loader])
        np.testing.assert_array_equal(seen, np.arange(5))

    def test_invalid_batch_size_raises(self):
        with pytest.raises(ValueError):
            DataLoader(small_dataset(), batch_size=0)

    def test_weighted_sampling_rebalances(self, rng):
        labels = np.array([0] * 90 + [1] * 10)
        ds = ArrayDataset(np.zeros((100, 1, 1, 1)), labels)
        loader = DataLoader(ds, batch_size=100, rng=rng,
                            sample_weights=balanced_weights(labels))
        drawn = []
        for _ in range(20):
            for _, batch_labels in loader:
                drawn.append(batch_labels.mean())
        assert np.mean(drawn) == pytest.approx(0.5, abs=0.07)

    def test_weight_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            DataLoader(small_dataset(4), batch_size=2,
                       sample_weights=np.ones(3))

    def test_drop_last_smaller_than_batch_raises(self):
        # would silently yield zero batches every epoch
        with pytest.raises(ValueError, match="no batches"):
            DataLoader(small_dataset(4), batch_size=8, drop_last=True)


class TestLoaderDeterminism:
    """Same RNG state in -> same batch stream out.

    This is the property the crash-safe training resume guarantee
    (repro.train) rests on: restoring the loader and augmenter RNG
    states must replay the exact sampling order and flip decisions.
    """

    @staticmethod
    def _weighted_augmented_loader(seed=5):
        rng = np.random.default_rng(seed)
        labels = np.tile([0, 0, 0, 1], 5)
        ds = ArrayDataset(np.arange(20 * 9, dtype=float).reshape(20, 1, 3, 3),
                          labels)
        return DataLoader(
            ds, batch_size=6,
            rng=np.random.default_rng(rng.integers(2**32)),
            augment=RandomFlip(np.random.default_rng(rng.integers(2**32))),
            sample_weights=balanced_weights(labels),
        )

    def test_state_roundtrip_replays_batch_stream(self):
        loader = self._weighted_augmented_loader()
        list(loader)  # advance both generators past their seed state
        state = loader.state_dict()
        first = [(img.copy(), lab.copy()) for img, lab in loader]
        loader.load_state_dict(state)
        second = [(img.copy(), lab.copy()) for img, lab in loader]
        assert len(first) == len(second)
        for (img_a, lab_a), (img_b, lab_b) in zip(first, second):
            np.testing.assert_array_equal(img_a, img_b)
            np.testing.assert_array_equal(lab_a, lab_b)

    def test_identically_seeded_loaders_agree(self):
        stream_a = [img.copy() for img, _ in self._weighted_augmented_loader()]
        stream_b = [img.copy() for img, _ in self._weighted_augmented_loader()]
        for a, b in zip(stream_a, stream_b):
            np.testing.assert_array_equal(a, b)

    def test_state_dict_is_json_string_roundtrip(self):
        g = np.random.default_rng(3)
        g.random(17)  # push past the seed state
        state = capture_rng_state(g)
        assert isinstance(state, str)
        g2 = np.random.default_rng(0)
        restore_rng_state(g2, state)
        np.testing.assert_array_equal(g.random(8), g2.random(8))

    def test_augment_state_required_when_augmenting(self):
        loader = self._weighted_augmented_loader()
        with pytest.raises(KeyError):
            loader.load_state_dict({"rng": capture_rng_state(loader.rng)})


class TestBalancedWeights:
    def test_class_mass_equal(self):
        labels = np.array([0, 0, 0, 1])
        w = balanced_weights(labels)
        assert w[labels == 0].sum() == pytest.approx(w[labels == 1].sum())

    def test_sums_to_one(self):
        w = balanced_weights(np.array([0, 1, 1, 1, 0]))
        assert w.sum() == pytest.approx(1.0)


class TestRandomFlip:
    def test_preserves_shape_and_values(self, rng):
        flip = RandomFlip(rng)
        batch = rng.random((8, 1, 6, 6))
        out = flip(batch)
        assert out.shape == batch.shape
        # flipping permutes pixels within each image: sums unchanged
        np.testing.assert_allclose(
            out.sum(axis=(1, 2, 3)), batch.sum(axis=(1, 2, 3))
        )

    def test_does_not_mutate_input(self, rng):
        flip = RandomFlip(rng)
        batch = rng.random((8, 1, 4, 4))
        original = batch.copy()
        flip(batch)
        np.testing.assert_array_equal(batch, original)

    def test_each_output_is_some_flip_of_input(self, rng):
        flip = RandomFlip(rng)
        batch = rng.random((16, 1, 5, 5))
        out = flip(batch)
        for i in range(16):
            candidates = [
                batch[i],
                batch[i, :, :, ::-1],
                batch[i, :, ::-1, :],
                batch[i, :, ::-1, ::-1],
            ]
            assert any(np.array_equal(out[i], c) for c in candidates)

    def test_disabled_axes(self, rng):
        flip = RandomFlip(rng, horizontal=False, vertical=False)
        batch = rng.random((4, 1, 3, 3))
        np.testing.assert_array_equal(flip(batch), batch)


class TestSplit:
    def test_partition_sizes(self, rng):
        train, val = train_val_split(small_dataset(20), 0.25, rng)
        assert len(train) == 15
        assert len(val) == 5

    def test_disjoint_cover(self, rng):
        ds = ArrayDataset(np.arange(12).reshape(12, 1, 1, 1).astype(float),
                          np.arange(12))
        train, val = train_val_split(ds, 0.25, rng)
        combined = sorted(
            train.labels.tolist() + val.labels.tolist()
        )
        assert combined == list(range(12))

    def test_invalid_fraction_raises(self, rng):
        with pytest.raises(ValueError):
            train_val_split(small_dataset(), 0.0, rng)

    def test_empty_train_side_raises(self, rng):
        # 2 samples at 0.9 -> n_val = 2, train side would be empty
        with pytest.raises(ValueError, match="training samples"):
            train_val_split(small_dataset(2), 0.9, rng)


@settings(max_examples=20, deadline=None)
@given(n=st.integers(2, 40), batch=st.integers(1, 8))
def test_loader_covers_every_index_property(n, batch):
    """Property: unweighted shuffled loading is a permutation."""
    ds = ArrayDataset(np.zeros((n, 1, 1, 1)), np.arange(n))
    loader = DataLoader(ds, batch_size=batch, rng=np.random.default_rng(n))
    seen = np.concatenate([labels for _, labels in loader])
    assert sorted(seen.tolist()) == list(range(n))
