"""Tests for the low-level convolution/pooling kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import functional as F

from ..conftest import finite_difference


def naive_conv2d(x, w, b, stride, padding, pad_value=0.0):
    """Reference nested-loop convolution for cross-checking im2col."""
    n, c_in, h, wd = x.shape
    c_out, _, kh, kw = w.shape
    xp = np.full(
        (n, c_in, h + 2 * padding, wd + 2 * padding), pad_value, dtype=x.dtype
    )
    xp[:, :, padding : padding + h, padding : padding + wd] = x
    oh = (h + 2 * padding - kh) // stride + 1
    ow = (wd + 2 * padding - kw) // stride + 1
    out = np.zeros((n, c_out, oh, ow))
    for b_i in range(n):
        for f in range(c_out):
            for i in range(oh):
                for j in range(ow):
                    patch = xp[
                        b_i, :, i * stride : i * stride + kh,
                        j * stride : j * stride + kw,
                    ]
                    out[b_i, f, i, j] = (patch * w[f]).sum()
            if b is not None:
                out[b_i, f] += b[f]
    return out


class TestConvOutputSize:
    def test_basic(self):
        assert F.conv_output_size(8, 3, 1, 1) == 8
        assert F.conv_output_size(8, 3, 2, 1) == 4
        assert F.conv_output_size(7, 1, 1, 0) == 7

    def test_window_too_large_raises(self):
        with pytest.raises(ValueError):
            F.conv_output_size(2, 5, 1, 0)


class TestPad:
    def test_pad_and_unpad_roundtrip(self, rng):
        x = rng.normal(size=(2, 3, 5, 5))
        assert np.array_equal(F.unpad2d(F.pad2d(x, 2), 2), x)

    def test_pad_zero_is_identity(self, rng):
        x = rng.normal(size=(1, 1, 4, 4))
        assert F.pad2d(x, 0) is x

    def test_pad_value(self):
        x = np.zeros((1, 1, 2, 2))
        padded = F.pad2d(x, 1, value=-1.0)
        assert padded[0, 0, 0, 0] == -1.0
        assert padded.shape == (1, 1, 4, 4)

    def test_negative_padding_raises(self):
        with pytest.raises(ValueError):
            F.pad2d(np.zeros((1, 1, 2, 2)), -1)


class TestIm2col:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1), (3, 2)])
    def test_matches_naive_conv(self, rng, stride, padding):
        x = rng.normal(size=(2, 3, 7, 7))
        w = rng.normal(size=(4, 3, 3, 3))
        out, _ = F.conv2d_forward(x, w, None, stride, padding)
        expected = naive_conv2d(x, w, None, stride, padding)
        np.testing.assert_allclose(out, expected, atol=1e-10)

    def test_pad_value_matches_naive(self, rng):
        x = rng.normal(size=(1, 2, 5, 5))
        w = rng.normal(size=(3, 2, 3, 3))
        cols = F.im2col(x, 3, 3, 1, 1, pad_value=-1.0)
        out = (w.reshape(3, -1) @ cols).reshape(3, 1, 5, 5).transpose(1, 0, 2, 3)
        expected = naive_conv2d(x, w, None, 1, 1, pad_value=-1.0)
        np.testing.assert_allclose(out, expected, atol=1e-10)

    def test_column_count(self, rng):
        x = rng.normal(size=(2, 3, 8, 8))
        cols = F.im2col(x, 3, 3, 2, 1)
        assert cols.shape == (3 * 9, 2 * 4 * 4)

    def test_col2im_is_adjoint_of_im2col(self, rng):
        """<im2col(x), y> == <x, col2im(y)> — the defining adjoint identity."""
        x = rng.normal(size=(1, 2, 6, 6))
        cols = F.im2col(x, 3, 3, 2, 1)
        y = rng.normal(size=cols.shape)
        lhs = float((cols * y).sum())
        back = F.col2im(y, x.shape, 3, 3, 2, 1)
        rhs = float((x * back).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10)


class TestConvBackward:
    def test_grad_x_matches_finite_difference(self, rng):
        x = rng.normal(size=(2, 2, 5, 5))
        w = rng.normal(size=(3, 2, 3, 3))
        b = rng.normal(size=(3,))
        out, cols = F.conv2d_forward(x, w, b, 1, 1)
        g = rng.normal(size=out.shape)
        gx, gw, gb = F.conv2d_backward(g, cols, x.shape, w, 1, 1)
        num_gx = finite_difference(
            lambda xv: F.conv2d_forward(xv, w, b, 1, 1)[0], x.copy(), g
        )
        np.testing.assert_allclose(gx, num_gx, atol=1e-5)

    def test_grad_w_matches_finite_difference(self, rng):
        x = rng.normal(size=(1, 2, 4, 4))
        w = rng.normal(size=(2, 2, 3, 3))
        out, cols = F.conv2d_forward(x, w, None, 1, 0)
        g = rng.normal(size=out.shape)
        _, gw, _ = F.conv2d_backward(g, cols, x.shape, w, 1, 0, with_bias=False)
        num_gw = finite_difference(
            lambda wv: F.conv2d_forward(x, wv, None, 1, 0)[0], w.copy(), g
        )
        np.testing.assert_allclose(gw, num_gw, atol=1e-5)

    def test_grad_bias_is_summed_grad(self, rng):
        x = rng.normal(size=(2, 1, 4, 4))
        w = rng.normal(size=(2, 1, 3, 3))
        out, cols = F.conv2d_forward(x, w, np.zeros(2), 1, 1)
        g = rng.normal(size=out.shape)
        _, _, gb = F.conv2d_backward(g, cols, x.shape, w, 1, 1)
        np.testing.assert_allclose(gb, g.sum(axis=(0, 2, 3)))

    def test_channel_mismatch_raises(self, rng):
        x = rng.normal(size=(1, 3, 4, 4))
        w = rng.normal(size=(2, 2, 3, 3))
        with pytest.raises(ValueError):
            F.conv2d_forward(x, w, None, 1, 0)


class TestPooling:
    def test_maxpool_forward(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out, _ = F.maxpool2d_forward(x, 2, 2)
        np.testing.assert_allclose(out[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_backward_routes_to_argmax(self, rng):
        x = rng.normal(size=(2, 2, 6, 6))
        out, argmax = F.maxpool2d_forward(x, 2, 2)
        g = rng.normal(size=out.shape)
        gx = F.maxpool2d_backward(g, argmax, x.shape, 2, 2)
        num = finite_difference(
            lambda xv: F.maxpool2d_forward(xv, 2, 2)[0], x.copy(), g
        )
        np.testing.assert_allclose(gx, num, atol=1e-5)

    def test_avgpool_forward(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = F.avgpool2d_forward(x, 2, 2)
        np.testing.assert_allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avgpool_backward(self, rng):
        x = rng.normal(size=(1, 2, 4, 4))
        out = F.avgpool2d_forward(x, 2, 2)
        g = rng.normal(size=out.shape)
        gx = F.avgpool2d_backward(g, x.shape, 2, 2)
        num = finite_difference(
            lambda xv: F.avgpool2d_forward(xv, 2, 2), x.copy(), g
        )
        np.testing.assert_allclose(gx, num, atol=1e-5)

    def test_overlapping_maxpool_backward(self, rng):
        x = rng.normal(size=(1, 1, 5, 5))
        out, argmax = F.maxpool2d_forward(x, 3, 2)
        g = rng.normal(size=out.shape)
        gx = F.maxpool2d_backward(g, argmax, x.shape, 3, 2)
        num = finite_difference(
            lambda xv: F.maxpool2d_forward(xv, 3, 2)[0], x.copy(), g
        )
        np.testing.assert_allclose(gx, num, atol=1e-5)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(1, 3),
    c=st.integers(1, 3),
    size=st.integers(3, 8),
    kernel=st.integers(1, 3),
    stride=st.integers(1, 2),
)
def test_im2col_conv_equals_naive_property(n, c, size, kernel, stride):
    """Property: im2col-lowered convolution equals the direct definition
    for arbitrary geometry."""
    rng = np.random.default_rng(n * 100 + c * 10 + size)
    padding = kernel // 2
    x = rng.normal(size=(n, c, size, size))
    w = rng.normal(size=(2, c, kernel, kernel))
    out, _ = F.conv2d_forward(x, w, None, stride, padding)
    expected = naive_conv2d(x, w, None, stride, padding)
    np.testing.assert_allclose(out, expected, atol=1e-9)
