"""Tests for the public gradient-checking utility."""

import numpy as np
import pytest

from repro.nn import BatchNorm2D, Conv2D, Dense, ReLU, Sequential
from repro.nn.gradcheck import (
    GradCheckReport,
    check_layer_gradients,
    numerical_gradient,
)


class TestNumericalGradient:
    def test_quadratic(self):
        x = np.array([1.0, -2.0, 3.0])
        grad = numerical_gradient(lambda v: v**2, x.copy(), np.ones(3))
        np.testing.assert_allclose(grad, 2 * x, atol=1e-6)

    def test_respects_upstream_gradient(self):
        x = np.array([2.0])
        grad = numerical_gradient(lambda v: v, x.copy(), np.array([5.0]))
        np.testing.assert_allclose(grad, [5.0], atol=1e-6)

    def test_restores_input(self):
        x = np.array([1.0, 2.0])
        copy = x.copy()
        numerical_gradient(lambda v: v, x, np.ones(2))
        np.testing.assert_array_equal(x, copy)


class TestCheckLayer:
    def test_dense_passes(self, rng):
        layer = Dense(4, 3, rng=rng)
        report = check_layer_gradients(layer, rng.normal(size=(3, 4)))
        assert report.ok(1e-5)
        assert set(report.parameter_errors) == {"weight", "bias"}

    def test_conv_passes(self, rng):
        layer = Conv2D(2, 3, 3, padding=1, rng=rng)
        report = check_layer_gradients(layer, rng.normal(size=(2, 2, 5, 5)))
        assert report.ok(1e-4)

    def test_batchnorm_passes(self, rng):
        layer = BatchNorm2D(2)
        layer.gamma.data[...] = rng.normal(size=2)
        report = check_layer_gradients(layer, rng.normal(size=(4, 2, 3, 3)))
        assert report.ok(1e-4)

    def test_sequential_passes(self, rng):
        net = Sequential(Dense(3, 5, rng=rng), ReLU(), Dense(5, 2, rng=rng))
        report = check_layer_gradients(net, rng.normal(size=(4, 3)))
        assert report.ok(1e-5)

    def test_broken_layer_detected(self, rng):
        """A layer with a wrong backward must fail the check."""

        class BrokenDense(Dense):
            def backward(self, grad):
                return 2.0 * super().backward(grad)  # wrong factor

        layer = BrokenDense(3, 3, rng=rng)
        report = check_layer_gradients(layer, rng.normal(size=(2, 3)))
        assert not report.ok(1e-5)
        assert report.max_input_error > 1e-3

    def test_report_with_no_parameters(self, rng):
        report = check_layer_gradients(ReLU(), rng.normal(size=(3, 3)) + 2.0)
        assert report.max_parameter_error == 0.0
        assert report.ok()

    def test_report_dataclass(self):
        report = GradCheckReport(max_input_error=1e-7,
                                 parameter_errors={"w": 1e-6})
        assert report.ok(1e-5)
        assert not report.ok(1e-8)
