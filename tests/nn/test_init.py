"""Tests for weight initialisers."""

import numpy as np
import pytest

from repro.nn import init


class TestFanInOut:
    def test_dense(self):
        assert init.fan_in_out((10, 20)) == (10, 20)

    def test_conv(self):
        # (c_out, c_in, kh, kw) = (8, 4, 3, 3)
        assert init.fan_in_out((8, 4, 3, 3)) == (4 * 9, 8 * 9)

    def test_unsupported_raises(self):
        with pytest.raises(ValueError):
            init.fan_in_out((5,))


class TestXavier:
    def test_uniform_bound(self, rng):
        shape = (100, 100)
        w = init.xavier_uniform(shape, rng)
        bound = np.sqrt(6.0 / 200)
        assert np.abs(w).max() <= bound
        assert w.std() == pytest.approx(bound / np.sqrt(3), rel=0.1)

    def test_normal_variance(self, rng):
        w = init.xavier_normal((200, 200), rng)
        assert w.var() == pytest.approx(2.0 / 400, rel=0.15)

    def test_conv_shape(self, rng):
        w = init.xavier_uniform((4, 2, 3, 3), rng)
        assert w.shape == (4, 2, 3, 3)


class TestHe:
    def test_variance(self, rng):
        w = init.he_normal((300, 100), rng)
        assert w.var() == pytest.approx(2.0 / 300, rel=0.15)


def test_zeros():
    assert not init.zeros((3, 3)).any()
