"""Gradient and behaviour tests for every layer."""

import numpy as np
import pytest

from repro.nn import (
    AvgPool2D,
    BatchNorm1D,
    BatchNorm2D,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool2D,
    HardTanh,
    MaxPool2D,
    ReLU,
    ResidualBlock,
    Sequential,
    SignSTE,
    sign,
)

from ..conftest import finite_difference


def layer_input_grad(layer, x, training_forward=True):
    """Analytic input gradient of sum(layer(x) * g) plus (g, out)."""
    out = layer.forward(x, training=True)
    rng = np.random.default_rng(0)
    g = rng.normal(size=out.shape)
    gx = layer.backward(g)
    return gx, g, out


class TestDense:
    def test_forward_values(self, rng):
        layer = Dense(3, 2, rng=rng)
        layer.weight.data[...] = np.arange(6).reshape(3, 2)
        layer.bias.data[...] = [1.0, -1.0]
        out = layer.forward(np.array([[1.0, 0.0, 2.0]]))
        # [1,0,2] @ [[0,1],[2,3],[4,5]] = [8, 11]; plus bias [1,-1]
        np.testing.assert_allclose(out, [[9.0, 10.0]])

    def test_input_gradient(self, rng):
        layer = Dense(4, 3, rng=rng)
        x = rng.normal(size=(5, 4))
        gx, g, _ = layer_input_grad(layer, x)
        num = finite_difference(lambda xv: layer.forward(xv), x.copy(), g)
        np.testing.assert_allclose(gx, num, atol=1e-6)

    def test_weight_gradient(self, rng):
        layer = Dense(3, 2, rng=rng)
        x = rng.normal(size=(4, 3))
        out = layer.forward(x, training=True)
        g = rng.normal(size=out.shape)
        layer.backward(g)
        def f(w):
            layer.weight.data[...] = w
            return layer.forward(x)
        w0 = layer.weight.data.copy()
        num = finite_difference(f, w0.copy(), g)
        layer.weight.data[...] = w0
        np.testing.assert_allclose(layer.weight.grad, num, atol=1e-6)

    def test_no_bias(self, rng):
        layer = Dense(3, 2, bias=False, rng=rng)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_backward_without_forward_raises(self, rng):
        with pytest.raises(RuntimeError):
            Dense(2, 2, rng=rng).backward(np.zeros((1, 2)))


class TestConv2D:
    def test_input_gradient(self, rng):
        layer = Conv2D(2, 3, 3, stride=1, padding=1, rng=rng)
        x = rng.normal(size=(2, 2, 5, 5))
        gx, g, _ = layer_input_grad(layer, x)
        num = finite_difference(lambda xv: layer.forward(xv), x.copy(), g)
        np.testing.assert_allclose(gx, num, atol=1e-5)

    def test_weight_gradient_accumulates(self, rng):
        layer = Conv2D(1, 1, 3, rng=rng)
        x = rng.normal(size=(1, 1, 4, 4))
        out = layer.forward(x, training=True)
        g = np.ones_like(out)
        layer.backward(g)
        first = layer.weight.grad.copy()
        layer.forward(x, training=True)
        layer.backward(g)
        np.testing.assert_allclose(layer.weight.grad, 2 * first)

    def test_stride_shape(self, rng):
        layer = Conv2D(1, 4, 3, stride=2, padding=1, rng=rng)
        out = layer.forward(rng.normal(size=(2, 1, 8, 8)))
        assert out.shape == (2, 4, 4, 4)


class TestBatchNorm:
    def test_normalises_training_batch(self, rng):
        bn = BatchNorm2D(3)
        x = rng.normal(loc=5.0, scale=3.0, size=(8, 3, 6, 6))
        out = bn.forward(x, training=True)
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-7)
        np.testing.assert_allclose(out.std(axis=(0, 2, 3)), 1.0, atol=1e-3)

    def test_running_stats_converge(self, rng):
        bn = BatchNorm2D(2, momentum=0.5)
        for _ in range(30):
            bn.forward(rng.normal(loc=2.0, size=(16, 2, 4, 4)), training=True)
        np.testing.assert_allclose(bn.running_mean, 2.0, atol=0.2)

    def test_eval_uses_running_stats(self, rng):
        bn = BatchNorm2D(2)
        x = rng.normal(size=(4, 2, 3, 3))
        out_eval = bn.forward(x, training=False)
        # fresh BN with unit running stats: output ~= input
        np.testing.assert_allclose(out_eval, x / np.sqrt(1 + bn.eps), atol=1e-6)

    def test_input_gradient(self, rng):
        bn = BatchNorm2D(2)
        bn.gamma.data[...] = rng.normal(size=2)
        bn.beta.data[...] = rng.normal(size=2)
        x = rng.normal(size=(3, 2, 4, 4))
        out = bn.forward(x, training=True)
        g = rng.normal(size=out.shape)
        gx = bn.backward(g)
        num = finite_difference(
            lambda xv: bn.forward(xv, training=True), x.copy(), g, eps=1e-5
        )
        np.testing.assert_allclose(gx, num, atol=1e-4)

    def test_gamma_beta_gradients(self, rng):
        bn = BatchNorm1D(3)
        x = rng.normal(size=(6, 3))
        out = bn.forward(x, training=True)
        g = rng.normal(size=out.shape)
        bn.backward(g)
        x_hat = (x - x.mean(0)) / np.sqrt(x.var(0) + bn.eps)
        np.testing.assert_allclose(bn.gamma.grad, (g * x_hat).sum(0), atol=1e-8)
        np.testing.assert_allclose(bn.beta.grad, g.sum(0), atol=1e-10)

    def test_1d_shapes(self, rng):
        bn = BatchNorm1D(4)
        out = bn.forward(rng.normal(size=(5, 4)), training=True)
        assert out.shape == (5, 4)


class TestActivations:
    def test_relu_forward_backward(self, rng):
        relu = ReLU()
        x = np.array([[-1.0, 0.5], [2.0, -3.0]])
        out = relu.forward(x, training=True)
        np.testing.assert_allclose(out, [[0.0, 0.5], [2.0, 0.0]])
        gx = relu.backward(np.ones_like(x))
        np.testing.assert_allclose(gx, [[0.0, 1.0], [1.0, 0.0]])

    def test_hardtanh_clamps(self):
        ht = HardTanh()
        x = np.array([-2.0, -0.5, 0.5, 2.0])
        np.testing.assert_allclose(
            ht.forward(x, training=True), [-1.0, -0.5, 0.5, 1.0]
        )
        gx = ht.backward(np.ones(4))
        np.testing.assert_allclose(gx, [0.0, 1.0, 1.0, 0.0])

    def test_sign_never_zero(self):
        assert sign(np.array([0.0])) == 1.0
        np.testing.assert_allclose(sign(np.array([-0.1, 0.1])), [-1.0, 1.0])

    def test_sign_ste_forward_is_sign(self, rng):
        layer = SignSTE()
        x = rng.normal(size=(3, 3))
        np.testing.assert_array_equal(layer.forward(x, training=True), sign(x))

    def test_sign_ste_backward_window(self):
        """Eq. (10): gradient passes only where |x| < 1."""
        layer = SignSTE()
        x = np.array([-1.5, -0.5, 0.0, 0.5, 1.5])
        layer.forward(x, training=True)
        gx = layer.backward(np.ones(5))
        np.testing.assert_allclose(gx, [0.0, 1.0, 1.0, 1.0, 0.0])


class TestPoolingLayers:
    @pytest.mark.parametrize("layer_cls", [MaxPool2D, AvgPool2D])
    def test_input_gradient(self, rng, layer_cls):
        layer = layer_cls(2)
        x = rng.normal(size=(2, 2, 4, 4))
        gx, g, _ = layer_input_grad(layer, x)
        num = finite_difference(lambda xv: layer.forward(xv), x.copy(), g)
        np.testing.assert_allclose(gx, num, atol=1e-5)

    def test_global_avg_pool(self, rng):
        layer = GlobalAvgPool2D()
        x = rng.normal(size=(3, 4, 5, 5))
        out = layer.forward(x, training=True)
        np.testing.assert_allclose(out, x.mean(axis=(2, 3)))
        g = rng.normal(size=out.shape)
        gx = layer.backward(g)
        num = finite_difference(lambda xv: layer.forward(xv), x.copy(), g)
        np.testing.assert_allclose(gx, num, atol=1e-6)


class TestShapeAndDropout:
    def test_flatten_roundtrip(self, rng):
        layer = Flatten()
        x = rng.normal(size=(2, 3, 4, 4))
        out = layer.forward(x, training=True)
        assert out.shape == (2, 48)
        gx = layer.backward(out)
        np.testing.assert_array_equal(gx, x)

    def test_dropout_eval_is_identity(self, rng):
        layer = Dropout(0.5, rng=rng)
        x = rng.normal(size=(4, 4))
        np.testing.assert_array_equal(layer.forward(x, training=False), x)

    def test_dropout_preserves_expectation(self, rng):
        layer = Dropout(0.5, rng=rng)
        x = np.ones((200, 200))
        out = layer.forward(x, training=True)
        assert out.mean() == pytest.approx(1.0, abs=0.05)

    def test_dropout_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_dropout_backward_uses_same_mask(self, rng):
        layer = Dropout(0.3, rng=rng)
        x = rng.normal(size=(10, 10))
        out = layer.forward(x, training=True)
        gx = layer.backward(np.ones_like(x))
        zero_out = out == 0
        assert np.array_equal(gx == 0, zero_out)


class TestContainers:
    def test_sequential_composes(self, rng):
        net = Sequential(Dense(4, 8, rng=rng), ReLU(), Dense(8, 2, rng=rng))
        x = rng.normal(size=(3, 4))
        out = net.forward(x, training=True)
        assert out.shape == (3, 2)
        g = rng.normal(size=out.shape)
        gx = net.backward(g)
        num = finite_difference(lambda xv: net.forward(xv), x.copy(), g)
        np.testing.assert_allclose(gx, num, atol=1e-6)

    def test_sequential_indexing(self, rng):
        net = Sequential(Dense(2, 2, rng=rng))
        assert len(net) == 1
        assert isinstance(net[0], Dense)

    def test_residual_identity(self, rng):
        net = ResidualBlock(Sequential(Dense(4, 4, rng=rng)))
        x = rng.normal(size=(3, 4))
        inner = net.main.forward(x)
        out = net.forward(x, training=True)
        np.testing.assert_allclose(out, inner + x)
        g = rng.normal(size=out.shape)
        gx = net.backward(g)
        num = finite_difference(
            lambda xv: net.forward(xv, training=True), x.copy(), g
        )
        np.testing.assert_allclose(gx, num, atol=1e-6)

    def test_residual_projection(self, rng):
        net = ResidualBlock(Dense(4, 2, rng=rng), Dense(4, 2, rng=rng))
        x = rng.normal(size=(3, 4))
        out = net.forward(x, training=True)
        assert out.shape == (3, 2)
        g = rng.normal(size=out.shape)
        gx = net.backward(g)
        num = finite_difference(
            lambda xv: net.forward(xv, training=True), x.copy(), g
        )
        np.testing.assert_allclose(gx, num, atol=1e-6)

    def test_residual_shape_mismatch_raises(self, rng):
        net = ResidualBlock(Dense(4, 2, rng=rng))
        with pytest.raises(ValueError):
            net.forward(rng.normal(size=(3, 4)))
