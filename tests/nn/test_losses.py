"""Tests for softmax cross-entropy with hard and soft targets."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn import SoftmaxCrossEntropy, log_softmax, softmax

from ..conftest import finite_difference


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        p = softmax(rng.normal(size=(5, 3)))
        np.testing.assert_allclose(p.sum(axis=-1), 1.0)

    def test_shift_invariance(self, rng):
        z = rng.normal(size=(4, 3))
        np.testing.assert_allclose(softmax(z), softmax(z + 100.0), atol=1e-12)

    def test_log_softmax_consistent(self, rng):
        z = rng.normal(size=(4, 3))
        np.testing.assert_allclose(np.exp(log_softmax(z)), softmax(z), atol=1e-12)

    def test_extreme_logits_stable(self):
        z = np.array([[1000.0, -1000.0]])
        p = softmax(z)
        assert np.isfinite(p).all()
        assert p[0, 0] == pytest.approx(1.0)


class TestCrossEntropy:
    def test_hard_labels_match_manual(self, rng):
        loss_fn = SoftmaxCrossEntropy()
        logits = rng.normal(size=(6, 2))
        labels = rng.integers(0, 2, size=6)
        loss = loss_fn.forward(logits, labels)
        manual = -log_softmax(logits)[np.arange(6), labels].mean()
        assert loss == pytest.approx(manual)

    def test_soft_targets_match_manual(self, rng):
        loss_fn = SoftmaxCrossEntropy()
        logits = rng.normal(size=(4, 2))
        targets = np.array([[0.8, 0.2]] * 4)
        loss = loss_fn.forward(logits, targets)
        manual = -(targets * log_softmax(logits)).sum(axis=1).mean()
        assert loss == pytest.approx(manual)

    def test_gradient_matches_finite_difference(self, rng):
        loss_fn = SoftmaxCrossEntropy()
        logits = rng.normal(size=(3, 2))
        labels = np.array([0, 1, 1])
        loss_fn.forward(logits, labels)
        grad = loss_fn.backward()

        def f(z):
            inner = SoftmaxCrossEntropy()
            return np.array([inner.forward(z, labels)])

        num = finite_difference(f, logits.copy(), np.array([1.0]))
        np.testing.assert_allclose(grad, num, atol=1e-6)

    def test_gradient_rows_sum_to_zero(self, rng):
        """Softmax CE gradient rows must sum to 0 (probability simplex)."""
        loss_fn = SoftmaxCrossEntropy()
        logits = rng.normal(size=(5, 3))
        loss_fn.forward(logits, rng.integers(0, 3, size=5))
        np.testing.assert_allclose(loss_fn.backward().sum(axis=1), 0.0, atol=1e-12)

    def test_perfect_prediction_near_zero_loss(self):
        loss_fn = SoftmaxCrossEntropy()
        logits = np.array([[20.0, -20.0], [-20.0, 20.0]])
        assert loss_fn.forward(logits, np.array([0, 1])) < 1e-8

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            SoftmaxCrossEntropy().backward()

    def test_bad_target_shape_raises(self, rng):
        loss_fn = SoftmaxCrossEntropy()
        with pytest.raises(ValueError):
            loss_fn.forward(rng.normal(size=(3, 2)), np.zeros((3, 5)))


@settings(max_examples=30, deadline=None)
@given(
    logits=arrays(np.float64, (4, 2),
                  elements=st.floats(-30, 30, allow_nan=False)),
)
def test_loss_nonnegative_property(logits):
    """Cross-entropy against one-hot targets is always non-negative."""
    loss_fn = SoftmaxCrossEntropy()
    labels = np.array([0, 1, 0, 1])
    assert loss_fn.forward(logits, labels) >= 0.0
