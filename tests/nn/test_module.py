"""Tests for the Module/Parameter abstractions."""

import numpy as np
import pytest

from repro.nn import (
    BatchNorm2D,
    Conv2D,
    Dense,
    Module,
    Parameter,
    ResidualBlock,
    Sequential,
)


class TestParameter:
    def test_grad_initialised_to_zero(self):
        p = Parameter(np.ones((2, 3)))
        assert p.grad.shape == (2, 3)
        assert not p.grad.any()

    def test_zero_grad_resets(self):
        p = Parameter(np.ones(4))
        p.grad += 2.0
        p.zero_grad()
        assert not p.grad.any()

    def test_shape_and_size(self):
        p = Parameter(np.zeros((3, 4)))
        assert p.shape == (3, 4)
        assert p.size == 12


class TestTraversal:
    def test_named_parameters_paths(self, rng):
        net = Sequential(Conv2D(1, 2, 3, rng=rng), Dense(8, 2, rng=rng))
        names = [name for name, _ in net.named_parameters()]
        assert "layers.0.weight" in names
        assert "layers.1.bias" in names

    def test_nested_residual_traversal(self, rng):
        block = ResidualBlock(
            Sequential(Conv2D(2, 2, 3, padding=1, rng=rng)),
            Conv2D(2, 2, 1, rng=rng),
        )
        names = {name for name, _ in block.named_parameters()}
        assert any(name.startswith("main.") for name in names)
        assert any(name.startswith("shortcut.") for name in names)

    def test_num_parameters(self, rng):
        dense = Dense(4, 3, rng=rng)
        assert dense.num_parameters() == 4 * 3 + 3

    def test_zero_grad_recurses(self, rng):
        net = Sequential(Dense(3, 3, rng=rng), Dense(3, 2, rng=rng))
        for p in net.parameters():
            p.grad += 1.0
        net.zero_grad()
        assert all(not p.grad.any() for p in net.parameters())

    def test_children_yields_direct_modules(self, rng):
        net = Sequential(Dense(2, 2, rng=rng), Dense(2, 2, rng=rng))
        assert len(list(net.children())) == 2


class TestStateDict:
    def test_roundtrip(self, rng):
        net = Sequential(Conv2D(1, 2, 3, rng=rng), Dense(8, 2, rng=rng))
        state = net.state_dict()
        fresh = Sequential(Conv2D(1, 2, 3, rng=rng), Dense(8, 2, rng=rng))
        fresh.load_state_dict(state)
        for (na, pa), (nb, pb) in zip(
            net.named_parameters(), fresh.named_parameters()
        ):
            assert na == nb
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_state_dict_copies(self, rng):
        dense = Dense(2, 2, rng=rng)
        state = dense.state_dict()
        state["weight"][...] = 99.0
        assert not (dense.weight.data == 99.0).any()

    def test_batchnorm_running_stats_in_state(self, rng):
        bn = BatchNorm2D(3)
        bn.forward(rng.normal(size=(4, 3, 5, 5)), training=True)
        state = bn.state_dict()
        assert "running_mean" in state
        fresh = BatchNorm2D(3)
        fresh.load_state_dict(state)
        np.testing.assert_array_equal(fresh.running_mean, bn.running_mean)
        np.testing.assert_array_equal(fresh.running_var, bn.running_var)

    def test_missing_key_raises(self, rng):
        dense = Dense(2, 2, rng=rng)
        with pytest.raises(KeyError):
            dense.load_state_dict({})

    def test_shape_mismatch_raises(self, rng):
        dense = Dense(2, 2, rng=rng)
        bad = {name: np.zeros((5, 5)) for name in ("weight", "bias")}
        with pytest.raises(ValueError):
            dense.load_state_dict(bad)

    def test_unimplemented_forward_raises(self):
        with pytest.raises(NotImplementedError):
            Module().forward(np.zeros(1))
