"""Tests for the optimizer family, including NAdam step equations."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, Momentum, NAG, NAdam, Parameter


def make_param(value, grad):
    p = Parameter(np.array(value, dtype=float))
    p.grad[...] = grad
    return p


class TestSGD:
    def test_step_equation(self):
        p = make_param([1.0, 2.0], [0.5, -0.5])
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [0.95, 2.05])

    def test_skips_frozen_parameters(self):
        p = make_param([1.0], [1.0])
        p.trainable = False
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [1.0])

    def test_invalid_lr_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.0)


class TestMomentum:
    def test_two_steps_accumulate_velocity(self):
        p = make_param([0.0], [1.0])
        opt = Momentum([p], lr=0.1, momentum=0.9)
        opt.step()  # v = -0.1, x = -0.1
        np.testing.assert_allclose(p.data, [-0.1])
        opt.step()  # v = -0.19, x = -0.29
        np.testing.assert_allclose(p.data, [-0.29])


class TestNAG:
    def test_first_step(self):
        p = make_param([0.0], [1.0])
        opt = NAG([p], lr=0.1, momentum=0.9)
        opt.step()
        # v_prev=0, v = -0.1, x += -0.9*0 + 1.9*(-0.1)
        np.testing.assert_allclose(p.data, [-0.19])


class TestAdam:
    def test_first_step_is_lr_sized(self):
        """With bias correction, the first Adam step is ~lr * sign(g)."""
        p = make_param([0.0], [3.0])
        Adam([p], lr=0.01).step()
        np.testing.assert_allclose(p.data, [-0.01], atol=1e-6)

    def test_adapts_to_gradient_scale(self):
        big = make_param([0.0], [100.0])
        small = make_param([0.0], [0.01])
        Adam([big, small], lr=0.01).step()
        # both steps ~lr regardless of gradient magnitude
        assert abs(big.data[0]) == pytest.approx(abs(small.data[0]), rel=0.01)


class TestNAdam:
    def test_first_step_formula(self):
        p = make_param([0.0], [2.0])
        opt = NAdam([p], lr=0.1, beta1=0.9, beta2=0.999, eps=1e-8)
        opt.step()
        g = 2.0
        m = 0.1 * g
        v = 0.001 * g * g
        m_hat = 0.9 * m / (1 - 0.9**2) + 0.1 * g / (1 - 0.9)
        v_hat = v / (1 - 0.999)
        expected = -0.1 * m_hat / (np.sqrt(v_hat) + 1e-8)
        np.testing.assert_allclose(p.data, [expected], rtol=1e-10)

    def test_lr_mutable_by_scheduler(self):
        p = make_param([0.0], [1.0])
        opt = NAdam([p], lr=0.1)
        opt.lr = 0.05
        assert opt.lr == 0.05


@pytest.mark.parametrize(
    "opt_cls,kwargs",
    [
        (SGD, {"lr": 0.1}),
        (Momentum, {"lr": 0.05}),
        (NAG, {"lr": 0.05}),
        (Adam, {"lr": 0.1}),
        (NAdam, {"lr": 0.1}),
    ],
)
def test_converges_on_quadratic(opt_cls, kwargs):
    """Every optimizer must drive a convex quadratic near its minimum."""
    p = Parameter(np.array([5.0, -3.0]))
    opt = opt_cls([p], **kwargs)
    target = np.array([1.0, 2.0])
    for _ in range(300):
        p.grad[...] = 2.0 * (p.data - target)
        opt.step()
    np.testing.assert_allclose(p.data, target, atol=0.05)


_ALL_OPTIMIZERS = [
    (SGD, {"lr": 0.1}),
    (Momentum, {"lr": 0.05}),
    (NAG, {"lr": 0.05}),
    (Adam, {"lr": 0.1}),
    (NAdam, {"lr": 0.1}),
]


def _quadratic_steps(opt, p, n, target=np.array([1.0, 2.0])):
    trace = []
    for _ in range(n):
        p.grad[...] = 2.0 * (p.data - target)
        opt.step()
        trace.append(p.data.copy())
    return trace


@pytest.mark.parametrize("opt_cls,kwargs", _ALL_OPTIMIZERS)
class TestStateDict:
    """Checkpoint/restore must continue training bit-identically —
    the optimizer-side half of the crash-safe resume guarantee."""

    def test_roundtrip_continues_bit_identically(self, opt_cls, kwargs):
        p_a = Parameter(np.array([5.0, -3.0]))
        opt_a = opt_cls([p_a], **kwargs)
        _quadratic_steps(opt_a, p_a, 7)
        state = opt_a.state_dict()
        frozen = {k: np.asarray(v).copy() for k, v in state.items()}

        # fresh optimizer over the same (copied) parameter values
        p_b = Parameter(p_a.data.copy())
        opt_b = opt_cls([p_b], **kwargs)
        opt_b.load_state_dict(state)
        cont_a = _quadratic_steps(opt_a, p_a, 5)
        cont_b = _quadratic_steps(opt_b, p_b, 5)
        for a, b in zip(cont_a, cont_b):
            np.testing.assert_array_equal(a, b)
        # state dict must be a snapshot, not a live view
        for key, value in frozen.items():
            np.testing.assert_array_equal(np.asarray(state[key]), value)

    def test_lr_roundtrips(self, opt_cls, kwargs):
        p = Parameter(np.zeros(2))
        opt = opt_cls([p], **kwargs)
        opt.lr = 0.0123
        state = opt.state_dict()
        opt2 = opt_cls([Parameter(np.zeros(2))], **kwargs)
        opt2.load_state_dict(state)
        assert opt2.lr == 0.0123

    def test_missing_slot_raises(self, opt_cls, kwargs):
        p = Parameter(np.zeros(3))
        opt = opt_cls([p], **kwargs)
        state = opt.state_dict()
        if len(state) == 1:  # SGD: lr only, no per-parameter slots
            pytest.skip("stateless optimizer: nothing to mismatch")
        two_param = opt_cls([Parameter(np.zeros(3)), Parameter(np.zeros(3))],
                            **kwargs)
        with pytest.raises(KeyError):
            two_param.load_state_dict(state)

    def test_shape_mismatch_raises(self, opt_cls, kwargs):
        p = Parameter(np.zeros(3))
        opt = opt_cls([p], **kwargs)
        state = opt.state_dict()
        if len(state) == 1:  # SGD: lr only, no per-parameter slots
            pytest.skip("stateless optimizer: nothing to mismatch")
        other = opt_cls([Parameter(np.zeros(5))], **kwargs)
        with pytest.raises(ValueError):
            other.load_state_dict(state)
