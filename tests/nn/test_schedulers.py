"""Tests for learning-rate schedulers."""

import pytest

from repro.nn import Parameter, ReduceLROnPlateau, SGD, StepDecay

import numpy as np


def make_opt(lr=1.0):
    return SGD([Parameter(np.zeros(1))], lr=lr)


class TestReduceLROnPlateau:
    def test_improvement_keeps_lr(self):
        opt = make_opt()
        sched = ReduceLROnPlateau(opt, factor=0.5, patience=1)
        assert not sched.step(1.0)
        assert not sched.step(0.5)
        assert opt.lr == 1.0

    def test_plateau_decays_exponentially(self):
        opt = make_opt()
        sched = ReduceLROnPlateau(opt, factor=0.5, patience=0)
        sched.step(1.0)
        assert sched.step(1.0)   # no improvement -> decay
        assert opt.lr == 0.5
        assert sched.step(1.0)
        assert opt.lr == 0.25

    def test_patience_delays_decay(self):
        opt = make_opt()
        sched = ReduceLROnPlateau(opt, factor=0.1, patience=2)
        sched.step(1.0)
        assert not sched.step(1.0)
        assert not sched.step(1.0)
        assert sched.step(1.0)
        assert opt.lr == pytest.approx(0.1)

    def test_min_lr_floor(self):
        opt = make_opt(lr=2e-5)
        sched = ReduceLROnPlateau(opt, factor=0.5, patience=0, min_lr=1e-5)
        sched.step(1.0)
        sched.step(1.0)
        assert opt.lr == pytest.approx(1e-5)
        assert not sched.step(1.0)  # already at floor: no further decay
        assert opt.lr == pytest.approx(1e-5)

    def test_threshold_counts_tiny_improvement_as_plateau(self):
        opt = make_opt()
        sched = ReduceLROnPlateau(opt, factor=0.5, patience=0, threshold=0.01)
        sched.step(1.0)
        assert sched.step(0.9999)  # <1% better: still a plateau
        assert opt.lr == 0.5

    def test_invalid_factor_raises(self):
        with pytest.raises(ValueError):
            ReduceLROnPlateau(make_opt(), factor=1.5)


class TestStepDecay:
    def test_decays_every_step_size(self):
        opt = make_opt()
        sched = StepDecay(opt, step_size=2, gamma=0.1)
        assert not sched.step()
        assert sched.step()
        assert opt.lr == pytest.approx(0.1)
        assert not sched.step()
        assert sched.step()
        assert opt.lr == pytest.approx(0.01)

    def test_invalid_step_size_raises(self):
        with pytest.raises(ValueError):
            StepDecay(make_opt(), step_size=0)
