"""Tests for learning-rate schedulers."""

import pytest

from repro.nn import LinearWarmup, Parameter, ReduceLROnPlateau, SGD, StepDecay

import numpy as np


def make_opt(lr=1.0):
    return SGD([Parameter(np.zeros(1))], lr=lr)


class TestReduceLROnPlateau:
    def test_improvement_keeps_lr(self):
        opt = make_opt()
        sched = ReduceLROnPlateau(opt, factor=0.5, patience=1)
        assert not sched.step(1.0)
        assert not sched.step(0.5)
        assert opt.lr == 1.0

    def test_plateau_decays_exponentially(self):
        opt = make_opt()
        sched = ReduceLROnPlateau(opt, factor=0.5, patience=0)
        sched.step(1.0)
        assert sched.step(1.0)   # no improvement -> decay
        assert opt.lr == 0.5
        assert sched.step(1.0)
        assert opt.lr == 0.25

    def test_patience_delays_decay(self):
        opt = make_opt()
        sched = ReduceLROnPlateau(opt, factor=0.1, patience=2)
        sched.step(1.0)
        assert not sched.step(1.0)
        assert not sched.step(1.0)
        assert sched.step(1.0)
        assert opt.lr == pytest.approx(0.1)

    def test_min_lr_floor(self):
        opt = make_opt(lr=2e-5)
        sched = ReduceLROnPlateau(opt, factor=0.5, patience=0, min_lr=1e-5)
        sched.step(1.0)
        sched.step(1.0)
        assert opt.lr == pytest.approx(1e-5)
        assert not sched.step(1.0)  # already at floor: no further decay
        assert opt.lr == pytest.approx(1e-5)

    def test_threshold_counts_tiny_improvement_as_plateau(self):
        opt = make_opt()
        sched = ReduceLROnPlateau(opt, factor=0.5, patience=0, threshold=0.01)
        sched.step(1.0)
        assert sched.step(0.9999)  # <1% better: still a plateau
        assert opt.lr == 0.5

    def test_invalid_factor_raises(self):
        with pytest.raises(ValueError):
            ReduceLROnPlateau(make_opt(), factor=1.5)


class TestStepDecay:
    def test_decays_every_step_size(self):
        opt = make_opt()
        sched = StepDecay(opt, step_size=2, gamma=0.1)
        assert not sched.step()
        assert sched.step()
        assert opt.lr == pytest.approx(0.1)
        assert not sched.step()
        assert sched.step()
        assert opt.lr == pytest.approx(0.01)

    def test_invalid_step_size_raises(self):
        with pytest.raises(ValueError):
            StepDecay(make_opt(), step_size=0)


class TestStateDicts:
    """Scheduler state must round-trip so a resumed run continues the
    same decay schedule (the scheduler half of crash-safe resume)."""

    def test_plateau_roundtrip_preserves_patience_countdown(self):
        opt = make_opt()
        sched = ReduceLROnPlateau(opt, factor=0.5, patience=2)
        sched.step(1.0)
        sched.step(1.0)  # one bad epoch banked
        state = sched.state_dict()

        opt2 = make_opt()
        fresh = ReduceLROnPlateau(opt2, factor=0.5, patience=2)
        fresh.load_state_dict(state)
        assert fresh.best == sched.best
        assert not fresh.step(1.0)  # second bad epoch: still within patience
        assert fresh.step(1.0)      # third: decay fires, same as original
        assert opt2.lr == 0.5

    def test_plateau_roundtrip_preserves_best(self):
        opt = make_opt()
        sched = ReduceLROnPlateau(opt, factor=0.5, patience=0)
        sched.step(0.3)
        restored = ReduceLROnPlateau(make_opt(), factor=0.5, patience=0)
        restored.load_state_dict(sched.state_dict())
        assert not restored.step(0.2)  # improvement over restored best
        assert restored.step(0.25)     # worse than 0.2: plateau

    def test_step_decay_roundtrip(self):
        opt = make_opt()
        sched = StepDecay(opt, step_size=3, gamma=0.1)
        sched.step()
        opt2 = make_opt()
        restored = StepDecay(opt2, step_size=3, gamma=0.1)
        restored.load_state_dict(sched.state_dict())
        assert not restored.step()
        assert restored.step()  # epoch 3: decay
        assert opt2.lr == pytest.approx(0.1)

    def test_linear_warmup_roundtrip_with_inner(self):
        opt = make_opt()
        inner = ReduceLROnPlateau(opt, factor=0.5, patience=0)
        sched = LinearWarmup(opt, warmup_epochs=2, start_factor=0.5,
                             after=inner)
        sched.step(1.0)  # mid-warmup
        inner.step(0.7)  # bank a best loss in the inner scheduler
        state = sched.state_dict()

        opt2 = make_opt()
        inner2 = ReduceLROnPlateau(opt2, factor=0.5, patience=0)
        restored = LinearWarmup(opt2, warmup_epochs=2, start_factor=0.5,
                                after=inner2)
        restored.load_state_dict(state)
        opt2.lr = opt.lr  # lr itself lives in the optimizer state
        assert restored.step(1.0)  # finishes warmup at the target lr
        assert opt2.lr == pytest.approx(1.0)
        # inner scheduler state came along for the ride
        assert inner2.best == pytest.approx(0.7)
        restored.step(1.0)  # worse than the restored best: inner decays
        assert opt2.lr == pytest.approx(0.5)
