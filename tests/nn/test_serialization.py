"""Tests for model checkpointing."""

import numpy as np

from repro.nn import (
    BatchNorm2D,
    Conv2D,
    Dense,
    Flatten,
    GlobalAvgPool2D,
    Sequential,
    load_model,
    save_model,
)


def build(rng):
    return Sequential(
        Conv2D(1, 4, 3, padding=1, rng=rng),
        BatchNorm2D(4),
        GlobalAvgPool2D(),
        Dense(4, 2, rng=rng),
    )


class TestSerialization:
    def test_roundtrip_preserves_outputs(self, rng, tmp_path):
        model = build(rng)
        # exercise BN running stats so extra state is non-trivial
        x = rng.normal(size=(4, 1, 6, 6))
        model.forward(x, training=True)
        path = tmp_path / "model.npz"
        save_model(model, path)

        fresh = build(np.random.default_rng(999))
        load_model(fresh, path)
        np.testing.assert_allclose(model.forward(x), fresh.forward(x), atol=1e-12)

    def test_checkpoint_is_snapshot(self, rng, tmp_path):
        model = build(rng)
        path = tmp_path / "ck.npz"
        save_model(model, path)
        before = model.layers[0].weight.data.copy()
        model.layers[0].weight.data += 1.0
        load_model(model, path)
        np.testing.assert_array_equal(model.layers[0].weight.data, before)

    def test_flatten_dense_model(self, rng, tmp_path):
        model = Sequential(Flatten(), Dense(9, 2, rng=rng))
        path = tmp_path / "m.npz"
        save_model(model, path)
        fresh = Sequential(Flatten(), Dense(9, 2, rng=np.random.default_rng(5)))
        load_model(fresh, path)
        x = rng.normal(size=(2, 1, 3, 3))
        np.testing.assert_allclose(model.forward(x), fresh.forward(x))
