"""Tests for model checkpointing."""

import numpy as np
import pytest

from repro.nn import (
    BatchNorm2D,
    CheckpointError,
    Conv2D,
    Dense,
    Flatten,
    GlobalAvgPool2D,
    Sequential,
    checkpoint_path,
    load_meta,
    load_model,
    save_model,
)


def build(rng):
    return Sequential(
        Conv2D(1, 4, 3, padding=1, rng=rng),
        BatchNorm2D(4),
        GlobalAvgPool2D(),
        Dense(4, 2, rng=rng),
    )


class TestSerialization:
    def test_roundtrip_preserves_outputs(self, rng, tmp_path):
        model = build(rng)
        # exercise BN running stats so extra state is non-trivial
        x = rng.normal(size=(4, 1, 6, 6))
        model.forward(x, training=True)
        path = tmp_path / "model.npz"
        save_model(model, path)

        fresh = build(np.random.default_rng(999))
        load_model(fresh, path)
        np.testing.assert_allclose(model.forward(x), fresh.forward(x), atol=1e-12)

    def test_checkpoint_is_snapshot(self, rng, tmp_path):
        model = build(rng)
        path = tmp_path / "ck.npz"
        save_model(model, path)
        before = model.layers[0].weight.data.copy()
        model.layers[0].weight.data += 1.0
        load_model(model, path)
        np.testing.assert_array_equal(model.layers[0].weight.data, before)

    def test_flatten_dense_model(self, rng, tmp_path):
        model = Sequential(Flatten(), Dense(9, 2, rng=rng))
        path = tmp_path / "m.npz"
        save_model(model, path)
        fresh = Sequential(Flatten(), Dense(9, 2, rng=np.random.default_rng(5)))
        load_model(fresh, path)
        x = rng.normal(size=(2, 1, 3, 3))
        np.testing.assert_allclose(model.forward(x), fresh.forward(x))


class TestCheckpointPath:
    def test_appends_npz_suffix(self, tmp_path):
        assert checkpoint_path(tmp_path / "model").name == "model.npz"

    def test_keeps_existing_suffix(self, tmp_path):
        assert checkpoint_path(tmp_path / "model.npz").name == "model.npz"

    def test_save_without_suffix_loads_back(self, rng, tmp_path):
        """np.savez always writes ``.npz``; loading must find that file."""
        model = build(rng)
        written = save_model(model, tmp_path / "bare")
        assert written == tmp_path / "bare.npz" and written.exists()

        fresh = build(np.random.default_rng(1))
        load_model(fresh, tmp_path / "bare")  # suffix-less path round-trips
        x = rng.normal(size=(2, 1, 6, 6))
        np.testing.assert_allclose(model.forward(x), fresh.forward(x))

    def test_save_returns_written_path(self, rng, tmp_path):
        path = save_model(build(rng), tmp_path / "ck.npz")
        assert path == tmp_path / "ck.npz"


class TestMeta:
    def test_meta_round_trip(self, rng, tmp_path):
        meta = {"image_size": 32, "scaling": "xnor", "decision_bias": 0.25}
        path = save_model(build(rng), tmp_path / "m", meta=meta)
        loaded = load_meta(path)
        assert loaded == meta
        assert isinstance(loaded["image_size"], int)
        assert isinstance(loaded["decision_bias"], float)

    def test_meta_does_not_disturb_weights(self, rng, tmp_path):
        model = build(rng)
        path = save_model(model, tmp_path / "m", meta={"image_size": 16})
        fresh = build(np.random.default_rng(2))
        load_model(fresh, path)  # __meta__ keys must be filtered out
        x = rng.normal(size=(3, 1, 6, 6))
        np.testing.assert_allclose(model.forward(x), fresh.forward(x))

    def test_no_meta_gives_empty_dict(self, rng, tmp_path):
        path = save_model(build(rng), tmp_path / "m")
        assert load_meta(path) == {}

    def test_tampered_meta_refused(self, rng, tmp_path):
        """Meta entries drive model reconstruction (architecture knobs,
        decision threshold), so they carry their own checksum: a re-zipped
        edit to a ``__meta__`` entry fails both loaders loudly."""
        path = save_model(build(rng), tmp_path / "m",
                          meta={"image_size": 32, "decision_bias": 0.25})
        with np.load(path) as archive:
            arrays = {key: archive[key] for key in archive.files}
        arrays["__meta__.decision_bias"] = np.asarray(-0.25)  # stale digests
        np.savez(path, **arrays)
        with pytest.raises(CheckpointError, match="metadata checksum"):
            load_meta(path)
        with pytest.raises(CheckpointError, match="metadata checksum"):
            load_model(build(rng), path)
