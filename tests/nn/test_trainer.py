"""Tests for the Algorithm-1 training loop."""

import numpy as np
import pytest

from repro.nn import (
    ArrayDataset,
    DataLoader,
    Dense,
    GradientExplosionError,
    NAdam,
    ReduceLROnPlateau,
    ReLU,
    Sequential,
    SGD,
    SoftmaxCrossEntropy,
    Trainer,
    evaluate_loss,
    predict_logits,
)


def empty_loader():
    """A loader over a zero-sample dataset (yields no batches)."""
    ds = ArrayDataset(np.zeros((0, 4)), np.zeros(0, dtype=int))
    return DataLoader(ds, 8)


def toy_problem(rng, n=120):
    """Two Gaussian blobs, linearly separable."""
    x0 = rng.normal(loc=-1.0, size=(n // 2, 4))
    x1 = rng.normal(loc=+1.0, size=(n // 2, 4))
    x = np.concatenate([x0, x1])
    y = np.concatenate([np.zeros(n // 2, int), np.ones(n // 2, int)])
    order = rng.permutation(n)
    return ArrayDataset(x[order], y[order])


def make_model(rng):
    return Sequential(Dense(4, 8, rng=rng), ReLU(), Dense(8, 2, rng=rng))


class TestTrainer:
    def test_loss_decreases(self, rng):
        ds = toy_problem(rng)
        model = make_model(rng)
        trainer = Trainer(model, NAdam(model.parameters(), lr=0.01))
        history = trainer.fit(
            DataLoader(ds, 16, rng=np.random.default_rng(0)), epochs=10
        )
        assert history.epochs == 10
        assert history.train_loss[-1] < history.train_loss[0] * 0.5

    def test_learns_to_classify(self, rng):
        ds = toy_problem(rng)
        model = make_model(rng)
        trainer = Trainer(model, NAdam(model.parameters(), lr=0.01))
        trainer.fit(DataLoader(ds, 16, rng=np.random.default_rng(0)), epochs=15)
        pred = predict_logits(model, ds.images).argmax(1)
        assert (pred == ds.labels).mean() > 0.9

    def test_validation_feeds_scheduler(self, rng):
        ds = toy_problem(rng)
        model = make_model(rng)
        opt = SGD(model.parameters(), lr=1e-9)  # too small to improve
        sched = ReduceLROnPlateau(opt, factor=0.5, patience=0, min_lr=1e-12)
        trainer = Trainer(model, opt, scheduler=sched)
        loader = DataLoader(ds, 32, rng=np.random.default_rng(0))
        val = DataLoader(ds, 32, shuffle=False)
        history = trainer.fit(loader, epochs=4, val_loader=val)
        assert len(history.val_loss) == 4
        assert opt.lr < 1e-9  # plateau triggered decay

    def test_post_step_hook_runs(self, rng):
        ds = toy_problem(rng, n=32)
        model = make_model(rng)
        calls = []
        trainer = Trainer(
            model, SGD(model.parameters(), lr=0.01),
            post_step=lambda: calls.append(1),
        )
        loader = DataLoader(ds, 16, rng=np.random.default_rng(0))
        trainer.fit(loader, epochs=2)
        assert len(calls) == 2 * 2  # batches per epoch * epochs

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_nonfinite_loss_raises(self, rng):
        ds = toy_problem(rng, n=16)
        model = make_model(rng)
        model.layers[0].weight.data[...] = np.inf
        trainer = Trainer(model, SGD(model.parameters(), lr=0.1))
        with pytest.raises(FloatingPointError):
            trainer.train_batch(ds.images, ds.labels)

    def test_empty_train_loader_raises(self, rng):
        model = make_model(rng)
        trainer = Trainer(model, SGD(model.parameters(), lr=0.1))
        with pytest.raises(ValueError, match="no batches"):
            trainer.fit(empty_loader(), epochs=1)

    def test_grad_norm_limit_raises_before_update(self, rng):
        ds = toy_problem(rng, n=16)
        model = make_model(rng)
        before = [p.data.copy() for p in model.parameters()]
        trainer = Trainer(model, SGD(model.parameters(), lr=0.1),
                          max_grad_norm=1e-12)
        with pytest.raises(GradientExplosionError):
            trainer.train_batch(ds.images, ds.labels)
        # the exploding update must never have touched the weights
        for p, orig in zip(model.parameters(), before):
            np.testing.assert_array_equal(p.data, orig)

    def test_grad_norm_limit_permits_normal_training(self, rng):
        ds = toy_problem(rng)
        model = make_model(rng)
        trainer = Trainer(model, NAdam(model.parameters(), lr=0.01),
                          max_grad_norm=1e6)
        history = trainer.fit(
            DataLoader(ds, 16, rng=np.random.default_rng(0)), epochs=3
        )
        assert history.epochs == 3

    def test_history_records_lr(self, rng):
        ds = toy_problem(rng, n=32)
        model = make_model(rng)
        trainer = Trainer(model, SGD(model.parameters(), lr=0.123))
        history = trainer.fit(
            DataLoader(ds, 16, rng=np.random.default_rng(0)), epochs=2
        )
        assert history.lr == [0.123, 0.123]


class TestEvaluate:
    def test_evaluate_loss_matches_direct(self, rng):
        ds = toy_problem(rng, n=48)
        model = make_model(rng)
        loader = DataLoader(ds, 16, shuffle=False)
        loss = evaluate_loss(model, loader)
        direct = SoftmaxCrossEntropy().forward(
            model.forward(ds.images), ds.labels
        )
        assert loss == pytest.approx(direct, rel=1e-9)

    def test_predict_logits_batches_consistent(self, rng):
        ds = toy_problem(rng, n=50)
        model = make_model(rng)
        full = model.forward(ds.images)
        batched = predict_logits(model, ds.images, batch_size=7)
        np.testing.assert_allclose(full, batched, atol=1e-12)

    def test_empty_loader_raises(self, rng):
        model = make_model(rng)
        with pytest.raises(ValueError):
            evaluate_loss(model, empty_loader())

    def test_predict_logits_empty_batch(self, rng):
        model = make_model(rng)
        logits = predict_logits(model, np.zeros((0, 4)))
        assert logits.shape == (0, 2)
