"""Integration tests combining the framework extensions: warmup
schedules, weighted losses, callbacks and the trainer loop."""

import numpy as np
import pytest

from repro.nn import (
    ArrayDataset,
    BestWeightsKeeper,
    DataLoader,
    Dense,
    EarlyStopping,
    LinearWarmup,
    NAdam,
    ReduceLROnPlateau,
    ReLU,
    Sequential,
    SGD,
    Trainer,
    WeightedCrossEntropy,
    predict_logits,
)


def imbalanced_blobs(rng, n=120, positive_fraction=0.1):
    n_pos = max(2, int(n * positive_fraction))
    x0 = rng.normal(loc=-1.0, size=(n - n_pos, 3))
    x1 = rng.normal(loc=+1.0, size=(n_pos, 3))
    x = np.vstack([x0, x1])
    y = np.array([0] * (n - n_pos) + [1] * n_pos)
    order = rng.permutation(n)
    return ArrayDataset(x[order], y[order])


def make_model(rng):
    return Sequential(Dense(3, 8, rng=rng), ReLU(), Dense(8, 2, rng=rng))


class TestWeightedLossTraining:
    def test_weighted_loss_raises_minority_recall(self, rng):
        ds = imbalanced_blobs(rng)

        def train(loss_fn, seed):
            model = make_model(np.random.default_rng(seed))
            trainer = Trainer(model, NAdam(model.parameters(), lr=0.01),
                              loss_fn=loss_fn)
            loader = DataLoader(ds, 16, rng=np.random.default_rng(0))
            trainer.fit(loader, epochs=12)
            pred = predict_logits(model, ds.images).argmax(1)
            positives = ds.labels == 1
            return (pred[positives] == 1).mean()

        plain = train(None, seed=3)
        weighted = train(WeightedCrossEntropy(np.array([1.0, 9.0])), seed=3)
        assert weighted >= plain


class TestWarmupInTrainer:
    def test_warmup_steps_without_validation(self, rng):
        """The trainer must step schedulers even with no val loader."""
        ds = imbalanced_blobs(rng, n=32)
        model = make_model(rng)
        opt = SGD(model.parameters(), lr=1.0)
        sched = LinearWarmup(opt, warmup_epochs=3, start_factor=0.1)
        trainer = Trainer(model, opt, scheduler=sched)
        loader = DataLoader(ds, 16, rng=np.random.default_rng(0))
        history = trainer.fit(loader, epochs=3)
        # lr recorded per epoch climbs toward the target
        assert history.lr[0] < history.lr[-1]
        assert opt.lr == pytest.approx(1.0)

    def test_warmup_then_plateau(self, rng):
        ds = imbalanced_blobs(rng, n=48)
        model = make_model(rng)
        opt = SGD(model.parameters(), lr=1e-8)  # cannot improve: plateau
        sched = LinearWarmup(
            opt, warmup_epochs=1,
            after=ReduceLROnPlateau(opt, factor=0.5, patience=0,
                                    min_lr=1e-12),
        )
        trainer = Trainer(model, opt, scheduler=sched)
        loader = DataLoader(ds, 16, rng=np.random.default_rng(0))
        val = DataLoader(ds, 16, shuffle=False)
        trainer.fit(loader, epochs=5, val_loader=val)
        assert opt.lr < 1e-8  # the inner plateau scheduler decayed


class TestCallbacksWithTrainer:
    def test_early_stopping_driven_loop(self, rng):
        """Manual epoch loop with EarlyStopping + BestWeightsKeeper —
        the pattern the ablation experiments use."""
        ds = imbalanced_blobs(rng, n=64)
        model = make_model(rng)
        trainer = Trainer(model, NAdam(model.parameters(), lr=0.01))
        loader = DataLoader(ds, 16, rng=np.random.default_rng(0))
        val = DataLoader(ds, 16, shuffle=False)
        # require substantial (1e-2) improvement so the stop triggers
        # once convergence slows, not only on exact plateaus
        stopper = EarlyStopping(patience=2, min_delta=1e-2)
        keeper = BestWeightsKeeper(model)
        epochs_run = 0
        for _ in range(50):
            history = trainer.fit(loader, epochs=1, val_loader=val)
            epochs_run += 1
            val_loss = history.val_loss[-1]
            keeper.step(val_loss)
            if stopper.step(val_loss):
                break
        keeper.restore()
        assert epochs_run < 50  # converged and stopped early
        assert keeper.best < 1.0
