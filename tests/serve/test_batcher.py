"""Tests for the micro-batching queue.

The load-bearing property: coalescing is a throughput optimisation with
zero effect on results — every sample's output is bit-identical to a
direct engine call, no matter how requests interleave across threads.
"""

import threading
import time

import numpy as np
import pytest

from repro.serve import (
    DeadlineExceeded,
    MicroBatcher,
    ServiceMetrics,
    ServiceOverloaded,
)


def double(x):
    return x * 2.0


class TestMicroBatcher:
    def test_single_submit_roundtrip(self):
        with MicroBatcher(double, max_batch=4, max_wait_ms=1.0) as batcher:
            x = np.arange(12.0).reshape(1, 3, 2, 2)
            out = batcher.submit(x).result(timeout=5)
        np.testing.assert_array_equal(out, (x * 2.0)[0])

    def test_accepts_unbatched_sample(self):
        with MicroBatcher(double, max_batch=2, max_wait_ms=0.5) as batcher:
            out = batcher.infer(np.ones((1, 4, 4)))
        assert out.shape == (1, 4, 4)

    def test_rejects_multi_sample_input(self):
        with MicroBatcher(double) as batcher:
            with pytest.raises(ValueError):
                batcher.submit(np.ones((2, 1, 4, 4)))

    def test_coalesces_up_to_max_batch(self):
        metrics = ServiceMetrics()
        sizes = []

        def record(x):
            sizes.append(x.shape[0])
            time.sleep(0.01)  # let the queue fill while "inferring"
            return x

        with MicroBatcher(record, max_batch=8, max_wait_ms=50.0,
                          metrics=metrics) as batcher:
            futures = [batcher.submit(np.full((1, 1, 2, 2), float(i)))
                       for i in range(20)]
            results = [f.result(timeout=10) for f in futures]
        assert max(sizes) > 1  # coalescing happened
        assert all(size <= 8 for size in sizes)  # cap respected
        assert sum(sizes) == 20
        assert metrics.batches_total == len(sizes)
        for i, out in enumerate(results):  # order preserved
            np.testing.assert_array_equal(out, np.full((1, 2, 2), float(i)))

    def test_zero_wait_degenerates_to_per_request(self):
        sizes = []

        def record(x):
            sizes.append(x.shape[0])
            return x

        with MicroBatcher(record, max_batch=64, max_wait_ms=0.0) as batcher:
            for i in range(5):
                batcher.infer(np.full((1, 1, 2, 2), float(i)))
        assert sizes == [1] * 5

    def test_infer_fn_exception_propagates(self):
        def boom(x):
            raise RuntimeError("engine on fire")

        with MicroBatcher(boom, max_wait_ms=0.0) as batcher:
            future = batcher.submit(np.ones((1, 1, 2, 2)))
            with pytest.raises(RuntimeError, match="engine on fire"):
                future.result(timeout=5)

    def test_close_drains_and_rejects_new_work(self):
        batcher = MicroBatcher(double, max_batch=4, max_wait_ms=1.0)
        futures = [batcher.submit(np.full((1, 1, 2, 2), float(i)))
                   for i in range(6)]
        batcher.close()
        for i, future in enumerate(futures):
            np.testing.assert_array_equal(
                future.result(timeout=5), np.full((1, 2, 2), 2.0 * i)
            )
        with pytest.raises(RuntimeError):
            batcher.submit(np.ones((1, 1, 2, 2)))
        batcher.close()  # idempotent

    def test_malformed_submit_fails_at_the_door(self):
        """Shape/dtype mismatches raise in the caller, never poison the
        consumer-thread concatenate of co-batched requests."""
        with MicroBatcher(double, max_batch=8, max_wait_ms=20.0) as batcher:
            good = batcher.submit(np.ones((1, 1, 4, 4)))
            with pytest.raises(ValueError, match="contract"):
                batcher.submit(np.ones((1, 1, 8, 8)))  # wrong shape
            with pytest.raises(ValueError, match="contract"):
                batcher.submit(np.ones((1, 1, 4, 4), dtype=np.float32))
            with pytest.raises(ValueError, match="numeric"):
                batcher.submit(np.array([[["a"] * 4] * 4]))
            np.testing.assert_array_equal(
                good.result(timeout=5), np.full((1, 4, 4), 2.0)
            )

    def test_poison_request_quarantined_by_bisection(self):
        """One poison clip in a coalesced batch fails alone; every
        healthy co-batched request still gets its exact result."""

        def poison_fn(x):
            if np.any(x == 7.0):
                raise RuntimeError("poison clip")
            return x * 10.0

        metrics = ServiceMetrics()
        with MicroBatcher(poison_fn, max_batch=16, max_wait_ms=50.0,
                          metrics=metrics) as batcher:
            futures = [batcher.submit(np.full((1, 1, 2, 2), float(i)))
                       for i in range(10)]
            for i, future in enumerate(futures):
                if i == 7:
                    with pytest.raises(RuntimeError, match="poison clip"):
                        future.result(timeout=10)
                else:
                    np.testing.assert_array_equal(
                        future.result(timeout=10),
                        np.full((1, 2, 2), 10.0 * i),
                    )
        assert metrics.quarantined_total == 1
        assert metrics.batch_splits_total >= 1

    def test_shed_policy_raises_typed_overload(self):
        release = threading.Event()

        def slow(x):
            release.wait(10)
            return x

        metrics = ServiceMetrics()
        batcher = MicroBatcher(slow, max_batch=1, max_wait_ms=0.0,
                               metrics=metrics, queue_depth=1,
                               overflow="shed")
        try:
            first = batcher.submit(np.ones((1, 2, 2)))
            time.sleep(0.05)  # consumer picks up `first`, blocks in slow()
            queued = batcher.submit(np.ones((1, 2, 2)))  # fills the queue
            with pytest.raises(ServiceOverloaded):
                batcher.submit(np.ones((1, 2, 2)))
            assert metrics.shed_total == 1
        finally:
            release.set()
            batcher.close()
        assert first.result(timeout=5) is not None
        assert queued.result(timeout=5) is not None

    def test_block_policy_admission_deadline(self):
        release = threading.Event()

        def slow(x):
            release.wait(10)
            return x

        batcher = MicroBatcher(slow, max_batch=1, max_wait_ms=0.0,
                               queue_depth=1, overflow="block")
        try:
            batcher.submit(np.ones((1, 2, 2)))
            time.sleep(0.05)
            batcher.submit(np.ones((1, 2, 2)))
            with pytest.raises(DeadlineExceeded) as excinfo:
                batcher.submit(np.ones((1, 2, 2)), timeout=0.1)
            assert excinfo.value.stage == "admission"
        finally:
            release.set()
            batcher.close()

    def test_queued_request_expires_at_its_deadline(self):
        release = threading.Event()

        def slow(x):
            release.wait(10)
            return x

        metrics = ServiceMetrics()
        batcher = MicroBatcher(slow, max_batch=1, max_wait_ms=0.0,
                               metrics=metrics)
        try:
            batcher.submit(np.ones((1, 2, 2)))  # occupies the consumer
            time.sleep(0.05)
            stale = batcher.submit(np.ones((1, 2, 2)), timeout=0.05)
            time.sleep(0.1)  # deadline passes while queued
            release.set()
            with pytest.raises(DeadlineExceeded):
                stale.result(timeout=5)
            assert metrics.timeouts_total == 1
        finally:
            release.set()
            batcher.close()

    def test_infer_timeout_on_hung_engine(self):
        release = threading.Event()

        def hung(x):
            release.wait(10)
            return x

        batcher = MicroBatcher(hung, max_batch=1, max_wait_ms=0.0)
        try:
            started = time.perf_counter()
            with pytest.raises(DeadlineExceeded):
                batcher.infer(np.ones((1, 2, 2)), timeout=0.1)
            assert time.perf_counter() - started < 5.0
        finally:
            release.set()
            batcher.close()

    def test_close_raises_when_consumer_is_wedged(self):
        release = threading.Event()

        def hung(x):
            release.wait(30)
            return x

        batcher = MicroBatcher(hung, max_batch=1, max_wait_ms=0.0)
        batcher.submit(np.ones((1, 2, 2)))
        time.sleep(0.05)
        with pytest.raises(RuntimeError, match="failed to stop"):
            batcher.close(timeout=0.2)
        release.set()
        batcher.close(timeout=5.0)  # drains cleanly once unwedged

    def test_blocked_submit_never_wedges_other_submitters_or_close(self):
        """A full queue under a wedged consumer stalls only the blocked
        submitter.  The batcher lock is never held while waiting for a
        slot, so concurrent submits keep their own deadlines and
        ``close()`` still runs and reports the wedge (regression:
        ``submit()`` used to hold the lock across a blocking queue put,
        deadlocking every other submitter and ``close()`` itself).
        """
        release = threading.Event()

        def hung(x):
            release.wait(30)
            return x

        batcher = MicroBatcher(hung, max_batch=1, max_wait_ms=0.0,
                               queue_depth=1, overflow="block")
        outcome: dict = {}
        try:
            batcher.submit(np.ones((1, 2, 2)))  # consumer takes it, wedges
            time.sleep(0.05)
            batcher.submit(np.ones((1, 2, 2)))  # fills the depth-1 queue

            def blocked_forever():
                try:
                    batcher.submit(np.ones((1, 2, 2)))  # no deadline
                except RuntimeError as exc:
                    outcome["error"] = exc

            thread = threading.Thread(target=blocked_forever)
            thread.start()
            time.sleep(0.05)
            # another submitter's own deadline still fires on time
            started = time.perf_counter()
            with pytest.raises(DeadlineExceeded):
                batcher.submit(np.ones((1, 2, 2)), timeout=0.1)
            assert time.perf_counter() - started < 2.0
            # and close() is not blocked out of the lock: it flips the
            # closed flag and reports the wedged consumer promptly
            started = time.perf_counter()
            with pytest.raises(RuntimeError, match="failed to stop"):
                batcher.close(timeout=0.2)
            assert time.perf_counter() - started < 2.0
            # the deadline-less blocked submitter loses the race cleanly
            thread.join(timeout=5.0)
            assert not thread.is_alive()
            assert isinstance(outcome.get("error"), RuntimeError)
        finally:
            release.set()
            batcher.close(timeout=10.0)  # drains cleanly once unwedged

    def test_infer_deadline_covers_admission_and_wait_once(self):
        """``infer(timeout=t)`` is one budget end to end: time spent
        blocked on admission is subtracted from the result wait
        (regression: the two stages each got the full ``t``, so the
        documented bound was ~2x in the worst case)."""

        def slow(x):
            time.sleep(0.6)
            return x

        batcher = MicroBatcher(slow, max_batch=1, max_wait_ms=0.0,
                               queue_depth=1, overflow="block")
        try:
            batcher.submit(np.ones((1, 2, 2)))  # consumer busy ~0.6s
            time.sleep(0.05)
            batcher.submit(np.ones((1, 2, 2)))  # queue full: admission blocks
            started = time.perf_counter()
            with pytest.raises(DeadlineExceeded):
                batcher.infer(np.ones((1, 2, 2)), timeout=0.9)
            # admission ate ~0.6s of the 0.9s budget; the old code then
            # waited a further full 0.9s on the future (~1.5s total)
            assert time.perf_counter() - started < 1.2
        finally:
            batcher.close(timeout=10.0)

    def test_deterministic_under_concurrent_submission(self):
        """Same request set -> same outputs, however batches coalesce.

        Eight threads hammer the batcher with interleaved submissions;
        every sample's result must equal the serial reference exactly,
        across runs with different max_batch/max_wait coalescing.
        """
        rng = np.random.default_rng(7)
        samples = rng.normal(size=(48, 1, 1, 4, 4))
        reference = [double(s)[0] for s in samples]

        for max_batch, max_wait_ms in ((1, 0.0), (4, 2.0), (64, 10.0)):
            results = [None] * len(samples)
            with MicroBatcher(double, max_batch=max_batch,
                              max_wait_ms=max_wait_ms) as batcher:

                def worker(indices):
                    for i in indices:
                        results[i] = batcher.submit(samples[i]).result(10)

                threads = [
                    threading.Thread(target=worker,
                                     args=(range(k, len(samples), 8),))
                    for k in range(8)
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
            for out, ref in zip(results, reference):
                np.testing.assert_array_equal(out, ref)

    def test_stress_concurrent_submits_and_close_loses_nothing(self):
        """Submitters hammer the batcher while close() races them.

        Every submit must either be rejected cleanly (RuntimeError: the
        batcher closed first) or produce a future that resolves with
        the correct value — no hangs, no futures stranded forever.
        """
        accepted: list = []
        rejected = [0]
        lock = threading.Lock()
        batcher = MicroBatcher(double, max_batch=8, max_wait_ms=0.5,
                               queue_depth=64, overflow="block")

        def submitter(worker: int):
            for i in range(200):
                value = float(worker * 1000 + i)
                try:
                    future = batcher.submit(
                        np.full((1, 1, 2, 2), value), timeout=10.0
                    )
                except RuntimeError:  # closed (or shed): clean rejection
                    with lock:
                        rejected[0] += 1
                    return
                with lock:
                    accepted.append((value, future))

        threads = [threading.Thread(target=submitter, args=(k,))
                   for k in range(6)]
        for t in threads:
            t.start()
        time.sleep(0.05)
        batcher.close(timeout=30.0)
        for t in threads:
            t.join(timeout=30.0)
            assert not t.is_alive(), "submitter thread hung"
        assert accepted, "close() won the race before any submit landed"
        resolved = 0
        for value, future in accepted:
            # every accepted future must resolve promptly: either the
            # correct doubled result or a clean deadline rejection
            try:
                out = future.result(timeout=10.0)
            except DeadlineExceeded:
                continue
            np.testing.assert_array_equal(
                out, np.full((1, 2, 2), value * 2.0)
            )
            resolved += 1
        assert resolved > 0
