"""Tests for the micro-batching queue.

The load-bearing property: coalescing is a throughput optimisation with
zero effect on results — every sample's output is bit-identical to a
direct engine call, no matter how requests interleave across threads.
"""

import threading
import time

import numpy as np
import pytest

from repro.serve import MicroBatcher, ServiceMetrics


def double(x):
    return x * 2.0


class TestMicroBatcher:
    def test_single_submit_roundtrip(self):
        with MicroBatcher(double, max_batch=4, max_wait_ms=1.0) as batcher:
            x = np.arange(12.0).reshape(1, 3, 2, 2)
            out = batcher.submit(x).result(timeout=5)
        np.testing.assert_array_equal(out, (x * 2.0)[0])

    def test_accepts_unbatched_sample(self):
        with MicroBatcher(double, max_batch=2, max_wait_ms=0.5) as batcher:
            out = batcher.infer(np.ones((1, 4, 4)))
        assert out.shape == (1, 4, 4)

    def test_rejects_multi_sample_input(self):
        with MicroBatcher(double) as batcher:
            with pytest.raises(ValueError):
                batcher.submit(np.ones((2, 1, 4, 4)))

    def test_coalesces_up_to_max_batch(self):
        metrics = ServiceMetrics()
        sizes = []

        def record(x):
            sizes.append(x.shape[0])
            time.sleep(0.01)  # let the queue fill while "inferring"
            return x

        with MicroBatcher(record, max_batch=8, max_wait_ms=50.0,
                          metrics=metrics) as batcher:
            futures = [batcher.submit(np.full((1, 1, 2, 2), float(i)))
                       for i in range(20)]
            results = [f.result(timeout=10) for f in futures]
        assert max(sizes) > 1  # coalescing happened
        assert all(size <= 8 for size in sizes)  # cap respected
        assert sum(sizes) == 20
        assert metrics.batches_total == len(sizes)
        for i, out in enumerate(results):  # order preserved
            np.testing.assert_array_equal(out, np.full((1, 2, 2), float(i)))

    def test_zero_wait_degenerates_to_per_request(self):
        sizes = []

        def record(x):
            sizes.append(x.shape[0])
            return x

        with MicroBatcher(record, max_batch=64, max_wait_ms=0.0) as batcher:
            for i in range(5):
                batcher.infer(np.full((1, 1, 2, 2), float(i)))
        assert sizes == [1] * 5

    def test_infer_fn_exception_propagates(self):
        def boom(x):
            raise RuntimeError("engine on fire")

        with MicroBatcher(boom, max_wait_ms=0.0) as batcher:
            future = batcher.submit(np.ones((1, 1, 2, 2)))
            with pytest.raises(RuntimeError, match="engine on fire"):
                future.result(timeout=5)

    def test_close_drains_and_rejects_new_work(self):
        batcher = MicroBatcher(double, max_batch=4, max_wait_ms=1.0)
        futures = [batcher.submit(np.full((1, 1, 2, 2), float(i)))
                   for i in range(6)]
        batcher.close()
        for i, future in enumerate(futures):
            np.testing.assert_array_equal(
                future.result(timeout=5), np.full((1, 2, 2), 2.0 * i)
            )
        with pytest.raises(RuntimeError):
            batcher.submit(np.ones((1, 1, 2, 2)))
        batcher.close()  # idempotent

    def test_deterministic_under_concurrent_submission(self):
        """Same request set -> same outputs, however batches coalesce.

        Eight threads hammer the batcher with interleaved submissions;
        every sample's result must equal the serial reference exactly,
        across runs with different max_batch/max_wait coalescing.
        """
        rng = np.random.default_rng(7)
        samples = rng.normal(size=(48, 1, 1, 4, 4))
        reference = [double(s)[0] for s in samples]

        for max_batch, max_wait_ms in ((1, 0.0), (4, 2.0), (64, 10.0)):
            results = [None] * len(samples)
            with MicroBatcher(double, max_batch=max_batch,
                              max_wait_ms=max_wait_ms) as batcher:

                def worker(indices):
                    for i in indices:
                        results[i] = batcher.submit(samples[i]).result(10)

                threads = [
                    threading.Thread(target=worker,
                                     args=(range(k, len(samples), 8),))
                    for k in range(8)
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
            for out, ref in zip(results, reference):
                np.testing.assert_array_equal(out, ref)
