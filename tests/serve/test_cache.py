"""Tests for the LRU rasterization cache."""

import threading

import numpy as np
import pytest

from repro.litho.geometry import Clip, Rect
from repro.litho.raster import rasterize, rasterize_plane
from repro.serve import PlaneCache, RasterCache, geometry_key


def make_clip(seed=0, size=512, n=6):
    rng = np.random.default_rng(seed)
    clip = Clip(size)
    for _ in range(n):
        x0 = int(rng.integers(0, size - 100))
        y0 = int(rng.integers(0, size - 100))
        clip.add(Rect(x0, y0, x0 + int(rng.integers(20, 90)),
                      y0 + int(rng.integers(20, 90))))
    return clip


class TestGeometryKey:
    def test_insertion_order_independent(self):
        rects = [Rect(0, 0, 10, 10), Rect(20, 20, 40, 40), Rect(5, 50, 9, 99)]
        a = Clip(100, rects)
        b = Clip(100, list(reversed(rects)))
        assert geometry_key(a, 16, "binary") == geometry_key(b, 16, "binary")

    def test_distinguishes_resolution_mode_and_geometry(self):
        clip = make_clip(1)
        base = geometry_key(clip, 16, "binary")
        assert geometry_key(clip, 32, "binary") != base
        assert geometry_key(clip, 16, "area") != base
        other = make_clip(2)
        assert geometry_key(other, 16, "binary") != base


class TestRasterCache:
    def test_hit_on_equal_geometry_different_object(self):
        cache = RasterCache(capacity=8)
        a, b = make_clip(3), make_clip(3)
        assert a is not b
        first = cache.get(a, 16)
        second = cache.get(b, 16)
        assert cache.hits == 1 and cache.misses == 1
        assert second is first  # shared storage, not a recompute

    def test_matches_direct_rasterize(self):
        cache = RasterCache()
        clip = make_clip(4)
        np.testing.assert_array_equal(
            cache.get(clip, 24, "area"), rasterize(clip, 24, "area")
        )

    def test_cached_array_is_readonly(self):
        cache = RasterCache()
        image = cache.get(make_clip(5), 16)
        with pytest.raises(ValueError):
            image[0, 0] = 7.0

    def test_lru_eviction(self):
        cache = RasterCache(capacity=2)
        clips = [make_clip(seed) for seed in range(3)]
        cache.get(clips[0], 16)
        cache.get(clips[1], 16)
        cache.get(clips[0], 16)  # refresh 0 -> 1 is now LRU
        cache.get(clips[2], 16)  # evicts 1
        assert len(cache) == 2
        misses = cache.misses
        cache.get(clips[0], 16)
        assert cache.misses == misses  # still cached
        cache.get(clips[1], 16)
        assert cache.misses == misses + 1  # was evicted

    def test_hit_rate_and_clear(self):
        cache = RasterCache()
        clip = make_clip(6)
        assert cache.hit_rate == 0.0
        cache.get(clip, 16)
        cache.get(clip, 16)
        cache.get(clip, 16)
        assert cache.hit_rate == pytest.approx(2 / 3)
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0

    def test_thread_safety_under_concurrent_access(self):
        cache = RasterCache(capacity=16)
        clips = [make_clip(seed) for seed in range(8)]
        expected = {i: rasterize(c, 16, "binary") for i, c in enumerate(clips)}
        errors = []

        def worker(offset):
            try:
                for i in range(40):
                    idx = (i + offset) % len(clips)
                    np.testing.assert_array_equal(
                        cache.get(clips[idx], 16), expected[idx]
                    )
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(k,)) for k in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert cache.hits + cache.misses == 160


class TestPlaneCache:
    def test_returns_readonly_plane_raster(self):
        layout = make_clip(3)
        cache = PlaneCache(capacity=2)
        plane = cache.get(layout, 2.0)
        np.testing.assert_array_equal(plane, rasterize_plane(layout, 2.0, "binary"))
        assert not plane.flags.writeable
        assert cache.misses == 1

    def test_hits_on_equal_geometry(self):
        layout = make_clip(4)
        clone = Clip(layout.size, list(layout.rects))
        cache = PlaneCache(capacity=2)
        first = cache.get(layout, 1.0)
        second = cache.get(clone, 1.0)
        assert first is second
        assert cache.hits == 1 and cache.misses == 1

    def test_scale_is_part_of_the_key(self):
        layout = make_clip(5)
        cache = PlaneCache(capacity=4)
        assert cache.get(layout, 1.0).shape != cache.get(layout, 2.0).shape
        assert cache.misses == 2

    def test_eviction_bound(self):
        cache = PlaneCache(capacity=1)
        cache.get(make_clip(1), 2.0)
        cache.get(make_clip(2), 2.0)
        assert len(cache) == 1


class TestChipTileCache:
    """Region-keyed chip-tile mode of the plane cache."""

    def make_plane(self, value=1.0, side=4):
        return np.full((side, side), value)

    def test_hit_keyed_by_token_region_scale_mode(self):
        cache = PlaneCache(capacity=8)
        region = Rect(0, 0, 256, 256)
        built = []

        def build():
            built.append(1)
            return self.make_plane()

        first = cache.get_chip_tile("a", region, 16, "binary", build)
        second = cache.get_chip_tile("a", region, 16, "binary", build)
        assert first is second and len(built) == 1
        # any key component change misses
        cache.get_chip_tile("b", region, 16, "binary", build)
        cache.get_chip_tile("a", Rect(0, 0, 256, 512), 16, "binary", build)
        cache.get_chip_tile("a", region, 32, "binary", build)
        cache.get_chip_tile("a", region, 16, "area", build)
        assert len(built) == 5

    def test_no_collision_with_geometry_keys(self):
        cache = PlaneCache(capacity=8)
        layout = make_clip(6)
        plane = cache.get(layout, 2, "binary")
        tile = cache.get_chip_tile(
            "t", Rect(0, 0, layout.size, layout.size), 2, "binary",
            self.make_plane,
        )
        assert tile is not plane
        assert len(cache) == 2

    def test_invalidate_strict_overlap(self):
        cache = PlaneCache(capacity=8)
        regions = [Rect(0, 0, 256, 256), Rect(256, 0, 512, 256),
                   Rect(0, 256, 256, 512)]
        for region in regions:
            cache.get_chip_tile("t", region, 16, "binary", self.make_plane)
        # touches the first two tiles' shared border at x=256 but only
        # strictly overlaps the first
        dropped = cache.invalidate_chip_regions(
            "t", [Rect(200, 10, 256, 40)]
        )
        assert dropped == 1
        assert len(cache) == 2
        rebuilt = []
        cache.get_chip_tile("t", regions[0], 16, "binary",
                            lambda: rebuilt.append(1) or self.make_plane())
        assert rebuilt == [1]

    def test_invalidate_respects_token(self):
        cache = PlaneCache(capacity=8)
        region = Rect(0, 0, 256, 256)
        cache.get_chip_tile("a", region, 16, "binary", self.make_plane)
        cache.get_chip_tile("b", region, 16, "binary", self.make_plane)
        assert cache.invalidate_chip_regions("a", [Rect(0, 0, 8, 8)]) == 1
        assert len(cache) == 1

    def test_invalidate_token_drops_all_its_tiles(self):
        cache = PlaneCache(capacity=8)
        layout = make_clip(7)
        cache.get(layout, 2, "binary")
        for x in (0, 256):
            cache.get_chip_tile("t", Rect(x, 0, x + 256, 256), 16,
                                "binary", self.make_plane)
        assert cache.invalidate_token("t") == 2
        assert len(cache) == 1  # the geometry-keyed plane survives
