"""Service-level tests for the streaming chip-scan path.

The contract: ``scan_chip`` flags exactly the windows :meth:`scan`
flags on the same layout (bit-identical scores, tile-bounded memory),
``rescan_chip`` equals a from-scratch ``scan_chip`` of the edited
layout, and injected tile failures degrade the report instead of
raising.
"""

import numpy as np
import pytest

from repro.chip import ChipScanResult
from repro.litho.fullchip import (
    apply_edits,
    synthesize_chip,
    synthesize_edit_trace,
)
from repro.litho.geometry import Clip, Rect
from repro.models.bnn_resnet import build_bnn_resnet
from repro.serve import (
    ChipScanRequest,
    ChipScanReport,
    FaultInjector,
    HotspotService,
    ScanRequest,
)

SIZE = 4096
WINDOW = 512
STRIDE = 256
IMAGE = 16
# two windows per tile axis -> a 4x4 multi-tile grid at this geometry
BUDGET = (2 * IMAGE) ** 2 * 8


@pytest.fixture(scope="module")
def model():
    rng = np.random.default_rng(99)
    model = build_bnn_resnet((4, 8), scaling="xnor", seed=7)
    x = (rng.random((8, 1, IMAGE, IMAGE)) > 0.5) * 2.0 - 1.0
    model.forward(x, training=True)
    return model


@pytest.fixture(scope="module")
def layout():
    return synthesize_chip(SIZE, seed=7)


def chip_request(layout, **kwargs):
    kwargs.setdefault("tile_budget", BUDGET)
    return ChipScanRequest(layout, WINDOW, STRIDE, **kwargs)


class TestScanChip:
    def test_hits_match_monolithic_scan(self, model, layout):
        with HotspotService.from_model(model, IMAGE) as svc:
            mono = svc.scan(ScanRequest(layout, WINDOW, STRIDE))
            chip = svc.scan_chip(chip_request(layout))
        assert not chip.degraded and chip.failed_tiles == ()
        assert chip.tiles_total > 1
        assert chip.windows_scanned == mono.windows_scanned
        chip_hits = [(h.x0, h.y0, h.x1, h.y1, h.score) for h in chip.hits()]
        mono_hits = [(h.x0, h.y0, h.x1, h.y1, h.score) for h in mono.hits]
        assert chip_hits == mono_hits

    def test_report_carries_memory_accounting(self, model, layout):
        with HotspotService.from_model(model, IMAGE) as svc:
            report = svc.scan_chip(chip_request(layout))
        assert 0 < report.peak_tile_bytes <= BUDGET
        assert report.windows_failed == 0
        assert report.rescored_windows is None
        assert isinstance(report.result, ChipScanResult)

    def test_metrics_counters(self, model, layout):
        with HotspotService.from_model(model, IMAGE) as svc:
            report = svc.scan_chip(chip_request(layout))
            stats = svc.metrics.stats()
        assert stats["chip_scan_requests_total"] == 1
        assert stats["chip_rescan_requests_total"] == 0
        assert stats["chip_tiles_scanned_total"] == report.tiles_total
        assert stats["chip_tiles_failed_total"] == 0
        assert stats["chip_peak_tile_bytes"] == report.peak_tile_bytes
        assert stats["windows_scanned_total"] == report.windows_scanned

    def test_token_populates_plane_cache(self, model, layout):
        with HotspotService.from_model(
            model, IMAGE, plane_cache_capacity=64
        ) as svc:
            report = svc.scan_chip(chip_request(layout, token="eco"))
            assert svc.plane_cache.misses == report.tiles_total
            svc.scan_chip(chip_request(layout, token="eco"))
            assert svc.plane_cache.hits == report.tiles_total


class TestRescanChip:
    def test_matches_scratch_scan(self, model, layout):
        edits = synthesize_edit_trace(layout, 4, seed=41)
        with HotspotService.from_model(model, IMAGE) as svc:
            baseline = svc.scan_chip(chip_request(layout, token="eco"))
            rescanned = svc.rescan_chip(baseline, edits)
            scratch = svc.scan_chip(
                chip_request(apply_edits(layout, edits))
            )
        assert rescanned.heatmap.equals(scratch.heatmap)
        assert 0 < rescanned.rescored_windows < baseline.windows_scanned
        assert rescanned.hits() == scratch.hits()

    def test_rescan_metrics(self, model, layout):
        edits = synthesize_edit_trace(
            layout, 2, seed=42, region=Rect(0, 0, 1024, 1024)
        )
        with HotspotService.from_model(model, IMAGE) as svc:
            baseline = svc.scan_chip(chip_request(layout))
            rescanned = svc.rescan_chip(baseline, edits)
            stats = svc.metrics.stats()
        assert stats["chip_scan_requests_total"] == 2
        assert stats["chip_rescan_requests_total"] == 1
        assert (stats["chip_windows_rescored_total"]
                == rescanned.rescored_windows > 0)

    def test_requires_scanner_state(self, model, layout):
        with HotspotService.from_model(model, IMAGE) as svc:
            report = svc.scan_chip(chip_request(layout))
            stripped = ChipScanReport(
                request_id="",
                windows_scanned=report.windows_scanned,
                tiles_total=report.tiles_total,
                peak_tile_bytes=report.peak_tile_bytes,
                heatmap=report.heatmap,
                result=None,
                model=report.model,
                backend=report.backend,
                latency_ms=report.latency_ms,
            )
            with pytest.raises(ValueError, match="scanner state"):
                svc.rescan_chip(stripped, [])


class TestDegradedChipScan:
    def test_failed_tiles_stay_nan_and_are_listed(self, model, layout):
        faults = FaultInjector(seed=0)
        faults.add_error("engine", on_calls=[2, 5])
        with HotspotService.from_model(
            model, IMAGE, faults=faults, shard_retries=0
        ) as svc:
            report = svc.scan_chip(chip_request(layout))
            healthy = HotspotService.from_model(model, IMAGE).scan_chip(
                chip_request(layout)
            )
        assert report.degraded
        assert len(report.failed_tiles) == 2
        assert report.windows_failed > 0
        # every scored window is bit-identical to the healthy sweep
        scores, reference = report.heatmap.scores, healthy.heatmap.scores
        scored = ~np.isnan(scores)
        assert scored.sum() == scores.size - report.windows_failed
        np.testing.assert_array_equal(scores[scored], reference[scored])
        stats = svc.metrics.stats()
        assert stats["chip_tiles_failed_total"] == 2
        assert stats["degraded_scans_total"] == 1

    def test_shard_retry_recovers(self, model, layout):
        faults = FaultInjector(seed=0)
        faults.add_error("engine", times=1)
        with HotspotService.from_model(
            model, IMAGE, faults=faults, shard_retries=1
        ) as svc:
            report = svc.scan_chip(chip_request(layout))
        assert not report.degraded and report.failed_tiles == ()
        assert svc.metrics.stats()["shard_retries_total"] == 1


class TestDurableScanChip:
    def test_durable_path_matches_plain_scan(self, model, layout, tmp_path):
        journal = tmp_path / "scan.journal"
        with HotspotService.from_model(model, IMAGE) as svc:
            plain = svc.scan_chip(chip_request(layout))
            report = svc.scan_chip(
                chip_request(layout, journal=str(journal))
            )
            stats = svc.metrics.stats()
        assert not report.degraded and not report.resumed
        assert report.tiles_replayed == 0
        np.testing.assert_array_equal(
            report.heatmap.scores, plain.heatmap.scores
        )
        assert journal.exists()
        assert stats["chip_resumed_scans_total"] == 0
        assert stats["chip_tile_retries_total"] == 0

    def test_resume_replays_journal(self, model, layout, tmp_path):
        journal = tmp_path / "scan.journal"
        with HotspotService.from_model(model, IMAGE) as svc:
            first = svc.scan_chip(
                chip_request(layout, journal=str(journal))
            )
            again = svc.scan_chip(
                chip_request(layout, journal=str(journal), resume=True)
            )
            stats = svc.metrics.stats()
        assert again.resumed
        assert again.tiles_replayed == first.tiles_total
        np.testing.assert_array_equal(
            again.heatmap.scores, first.heatmap.scores
        )
        assert stats["chip_resumed_scans_total"] == 1
        assert stats["chip_tiles_replayed_total"] == first.tiles_total

    def test_quarantined_poison_window_degrades_report(
        self, model, layout, tmp_path
    ):
        from repro.chip.tiling import TileSpec

        poison = (5, 6)
        faults = FaultInjector(seed=0)
        faults.add_error("engine", match=lambda args: (
            isinstance(args[0], TileSpec)
            and args[0].contains_index(*poison)
        ))
        with HotspotService.from_model(model, IMAGE, faults=faults) as svc:
            report = svc.scan_chip(chip_request(
                layout, journal=str(tmp_path / "scan.journal"),
                max_retries=0,
            ))
            stats = svc.metrics.stats()
        assert report.degraded
        assert report.quarantined_windows == (poison,)
        assert report.windows_failed == 1
        assert np.isnan(report.heatmap.scores[poison[1], poison[0]])
        assert stats["chip_windows_quarantined_total"] == 1
        assert stats["degraded_scans_total"] == 1

    def test_resume_requires_journal(self, layout):
        with pytest.raises(ValueError, match="resume"):
            chip_request(layout, resume=True)


class TestRescanHealsNaN:
    def test_rescan_rescores_failed_windows(self, model, layout):
        """The NaN-recovery regression: a no-edit re-scan must heal a
        degraded heatmap once the fault clears, not skip NaN windows as
        'clean'."""
        faults = FaultInjector(seed=0)
        faults.add_error("engine", on_calls=[2, 5])
        with HotspotService.from_model(
            model, IMAGE, faults=faults, shard_retries=0
        ) as svc:
            degraded = svc.scan_chip(chip_request(layout))
            assert degraded.degraded and degraded.windows_failed > 0
            faults.clear()
            healed = svc.rescan_chip(degraded, [])
            healthy = HotspotService.from_model(model, IMAGE).scan_chip(
                chip_request(layout)
            )
        assert not healed.degraded
        assert healed.windows_failed == 0
        assert healed.rescored_windows == degraded.windows_failed
        np.testing.assert_array_equal(
            healed.heatmap.scores, healthy.heatmap.scores
        )

    def test_degraded_rescan_chain_never_returns_stale_scores(
        self, model, layout
    ):
        """A failing rescan tile goes NaN (degraded), and a follow-up
        re-scan heals it — the chain never silently keeps pre-edit
        scores for dirtied windows."""
        edits = synthesize_edit_trace(
            layout, 2, seed=42, region=Rect(0, 0, 1024, 1024)
        )
        faults = FaultInjector(seed=0)
        with HotspotService.from_model(
            model, IMAGE, faults=faults, shard_retries=0
        ) as svc:
            baseline = svc.scan_chip(chip_request(layout))
            faults.add_error("engine")  # every rescan tile fails
            broken = svc.rescan_chip(baseline, edits)
            assert broken.degraded and len(broken.failed_tiles) > 0
            assert broken.windows_failed > 0
            scratch = HotspotService.from_model(model, IMAGE).scan_chip(
                chip_request(apply_edits(layout, edits))
            )
            # dirtied windows are NaN, never the stale pre-edit score
            scores = broken.heatmap.scores
            stale = ~np.isnan(scores) & ~np.isclose(
                scores, scratch.heatmap.scores
            )
            assert not stale.any()
            faults.clear()
            healed = svc.rescan_chip(broken, [])
        assert not healed.degraded
        np.testing.assert_array_equal(
            healed.heatmap.scores, scratch.heatmap.scores
        )

    def test_rescan_journal_snapshot_resumes(self, model, layout, tmp_path):
        from repro.chip import read_journal

        journal = tmp_path / "rescan.journal"
        edits = synthesize_edit_trace(
            layout, 2, seed=42, region=Rect(0, 0, 1024, 1024)
        )
        with HotspotService.from_model(model, IMAGE) as svc:
            baseline = svc.scan_chip(chip_request(layout))
            merged = svc.rescan_chip(baseline, edits, journal=str(journal))
            # the snapshot replays against the *edited* layout
            resumed = svc.scan_chip(ChipScanRequest(
                apply_edits(layout, edits), WINDOW, STRIDE,
                tile_budget=BUDGET, journal=str(journal), resume=True,
            ))
        # the snapshot covers the whole grid, not just the dirty tiles
        assert len(read_journal(journal).tiles) == baseline.tiles_total
        assert resumed.resumed
        assert resumed.tiles_replayed == baseline.tiles_total
        np.testing.assert_array_equal(
            resumed.heatmap.scores, merged.heatmap.scores
        )


class TestChipScanRequest:
    def test_validation(self):
        layout = Clip(1024)
        with pytest.raises(ValueError, match="window"):
            ChipScanRequest(layout, 2048, 256)
        with pytest.raises(ValueError, match="stride"):
            ChipScanRequest(layout, 512, 0)
        with pytest.raises(ValueError, match="tile_budget"):
            ChipScanRequest(layout, 512, 256, tile_budget=-1)
        with pytest.raises(ValueError, match="max_retries"):
            ChipScanRequest(layout, 512, 256, max_retries=-1)

    def test_report_invariant(self, model, layout):
        with HotspotService.from_model(model, IMAGE) as svc:
            report = svc.scan_chip(chip_request(layout))
        with pytest.raises(ValueError, match="degraded"):
            ChipScanReport(
                request_id="",
                windows_scanned=report.windows_scanned,
                tiles_total=report.tiles_total,
                peak_tile_bytes=report.peak_tile_bytes,
                heatmap=report.heatmap,
                model=report.model,
                backend=report.backend,
                latency_ms=1.0,
                degraded=True,
                failed_tiles=(),
            )
