"""Tests for the supervised multi-process cluster: parity & plumbing.

Chaos scenarios (kills, hangs, torn frames, crash loops, rollouts under
load) live in ``test_cluster_chaos.py``; this module pins the sunny-day
contract: bit-identical serving vs. the in-process reference, frame
transport integrity, provenance aggregation, and health semantics.
"""

import queue as queue_mod
from types import SimpleNamespace

import numpy as np
import pytest

from repro.litho.geometry import Clip, Rect
from repro.models.bnn_resnet import build_bnn_resnet
from repro.serve import (
    ClipRequest,
    ClusterService,
    FrameIntegrityError,
    HealthState,
    HotspotService,
    ReplicaState,
    ScanRequest,
    plane_scan_scale,
)
from repro.serve.cluster import FrameRef, put_frame, read_frame
from repro.serve.cluster.messages import ClassifyTask, WorkerConfig
from repro.serve.cluster.shm import FrameAttachment
from repro.serve.cluster.worker import _Served, _Worker

pytestmark = pytest.mark.timeout(240)


@pytest.fixture(scope="module")
def model():
    return build_bnn_resnet((4, 8), scaling="xnor", seed=0)


@pytest.fixture(scope="module")
def cluster(model):
    svc = ClusterService.from_model(
        model, image_size=16, processes=2,
        heartbeat_s=0.2, heartbeat_timeout_s=10.0,
    )
    yield svc
    svc.close()


@pytest.fixture(scope="module")
def reference(model):
    svc = HotspotService.from_model(model, image_size=16)
    yield svc
    svc.close()


def make_images(n=8, size=16, seed=0):
    rng = np.random.default_rng(seed)
    return (rng.random((n, size, size)) < 0.3).astype(float)


def make_layout(size=256, seed=3, n=40):
    rng = np.random.default_rng(seed)
    layout = Clip(size)
    for _ in range(n):
        x0 = int(rng.integers(0, size - 40))
        y0 = int(rng.integers(0, size - 40))
        layout.add(Rect(x0, y0, x0 + int(rng.integers(8, 40)),
                        y0 + int(rng.integers(8, 40))))
    return layout


class TestFrames:
    def test_round_trip_is_bit_identical(self):
        rng = np.random.default_rng(0)
        array = rng.random((3, 17, 17))
        frame = put_frame(array)
        try:
            out = read_frame(frame.ref)
        finally:
            frame.close()
        assert out.dtype == array.dtype
        assert np.array_equal(out, array)

    def test_corrupt_frame_is_refused(self):
        frame = put_frame(np.ones((4, 4)))
        ref = FrameRef(name=frame.ref.name, shape=frame.ref.shape,
                       dtype=frame.ref.dtype, digest="0" * 64)
        try:
            with pytest.raises(FrameIntegrityError):
                read_frame(ref)
            with pytest.raises(FrameIntegrityError):
                FrameAttachment(ref)
        finally:
            frame.close()

    def test_attachment_is_zero_copy_and_read_only(self):
        array = np.arange(12.0).reshape(3, 4)
        frame = put_frame(array)
        attachment = FrameAttachment(frame.ref)
        try:
            assert np.array_equal(attachment.array, array)
            with pytest.raises(ValueError):
                attachment.array[0, 0] = 99.0
        finally:
            attachment.close()
            frame.close()

    def test_frame_close_is_idempotent(self):
        frame = put_frame(np.zeros(3))
        frame.close()
        frame.close()
        with pytest.raises(FileNotFoundError):
            read_frame(frame.ref)


class TestClusterParity:
    def test_classify_matches_in_process_reference(self, cluster, reference):
        images = make_images()
        got = cluster.classify_many([ClipRequest(image=i) for i in images])
        want = [reference.classify(ClipRequest(image=i)) for i in images]
        assert [p.score for p in got] == [p.score for p in want]
        assert [p.label for p in got] == [p.label for p in want]

    def test_scan_matches_in_process_reference(self, cluster, reference):
        req = ScanRequest(layout=make_layout(), window=64, stride=32)
        got = cluster.scan(req)
        want = reference.scan(req)
        assert not got.degraded
        assert [(h.x0, h.y0, h.score) for h in got.hits] == \
            [(h.x0, h.y0, h.score) for h in want.hits]
        assert got.windows_scanned == want.windows_scanned

    def test_replicas_ready_and_crash_isolated(self, cluster):
        states = cluster.replica_states()
        assert set(states) == {0, 1}
        assert all(s is ReplicaState.READY for s in states.values())
        replicas = cluster.stats()["cluster"]["replicas"]
        pids = {r["pid"] for r in replicas.values()}
        assert len(pids) == 2  # distinct worker processes


class TestProvenanceAndHealth:
    def test_stats_aggregate_per_replica_provenance(self, cluster):
        stats = cluster.stats()
        replicas = stats["cluster"]["replicas"]
        for replica in replicas.values():
            prov = replica["provenance"]["default"]
            assert prov["backend"] in ("packed", "float", "compiled")
            assert "fallback_reason" in prov
            assert prov["version"] == 1
        fleet = stats["cluster"]["fleet"]["default"]
        assert fleet["mixed_backend"] is False
        assert len(fleet["backends"]) == 1

    def test_health_ready_on_clean_fleet(self, model):
        with ClusterService.from_model(
            model, image_size=16, processes=2,
            heartbeat_s=0.2, heartbeat_timeout_s=10.0,
        ) as svc:
            report = svc.health()
            assert report.state is HealthState.READY
            assert report.reasons == ()

    def test_mixed_backend_fleet_is_degraded(self, cluster):
        # simulate one replica having fallen back to the float engine
        handle = cluster._handles[0]
        original = {k: dict(v) for k, v in handle.provenance.items()}
        try:
            handle.provenance["default"] = dict(
                handle.provenance["default"], backend="float"
            )
            report = cluster.health()
            assert report.state is HealthState.DEGRADED
            assert any("mixed" in r and "backend" in r
                       for r in report.reasons)
        finally:
            handle.provenance = original
        assert cluster.health().state is HealthState.READY

    def test_closed_cluster_reports_draining(self, model):
        svc = ClusterService.from_model(model, image_size=16, processes=2)
        svc.close()
        assert svc.health().state is HealthState.DRAINING
        with pytest.raises(RuntimeError):
            svc.classify(ClipRequest(image=make_images(1)[0]))


class TestPlaneScanScale:
    """The alignment contract shared by the thread pool and the cluster."""

    def test_aligned_geometry_yields_scale(self):
        assert plane_scan_scale(256, 64, 32, pixels=16) == 4

    def test_misaligned_stride_disables_plane_path(self):
        assert plane_scan_scale(256, 64, 30, pixels=16) is None

    def test_window_not_multiple_of_pixels_disables(self):
        assert plane_scan_scale(256, 60, 32, pixels=16) is None

    def test_service_delegates_to_module_function(self, reference):
        req = ScanRequest(layout=make_layout(), window=64, stride=32)
        entry = reference.registry.get("default")
        assert reference._plane_scale(req, entry) == \
            plane_scan_scale(256, 64, 32, pixels=16)


def make_worker():
    """An in-process _Worker with plain queues (no process, no model)."""
    config = WorkerConfig(slot=0, generation=1, models=())
    return _Worker(config, queue_mod.Queue(), queue_mod.Queue())


def worker_with_engine(engine, version=1):
    worker = make_worker()
    worker.models["default"] = _Served(
        spec=SimpleNamespace(version=version), engine=engine, provenance={}
    )
    return worker


class TestWorkerTaskGuards:
    """The worker refuses, typed, everything it must not score."""

    def test_version_mismatch_is_refused_typed(self):
        scored = []
        engine = SimpleNamespace(
            predict_logits=lambda batch, **kw: scored.append(batch)
        )
        worker = worker_with_engine(engine, version=1)
        worker._handle_task(ClassifyTask(
            task_id=7, model="default", version=2, frame=None,
        ))
        msg = worker.results.get_nowait()
        assert msg.version_mismatch
        assert msg.logits is None
        assert "v1" in msg.error and "v2" in msg.error
        assert not scored  # the wrong weights never scored anything

    def test_missing_model_is_a_typed_error(self):
        worker = make_worker()
        worker._handle_task(ClassifyTask(
            task_id=1, model="nope", version=1, frame=None,
        ))
        msg = worker.results.get_nowait()
        assert "has no model" in msg.error
        assert not msg.version_mismatch

    def test_scoring_keyerror_is_not_misreported_as_missing_model(self):
        def predict_logits(batch, **kw):
            raise KeyError("bn_stats")

        worker = worker_with_engine(
            SimpleNamespace(predict_logits=predict_logits)
        )
        frame = put_frame(np.zeros((1, 1, 16, 16)))
        try:
            worker._handle_task(ClassifyTask(
                task_id=2, model="default", version=1, frame=frame.ref,
            ))
        finally:
            frame.close()
        msg = worker.results.get_nowait()
        assert "KeyError" in msg.error
        assert "has no model" not in msg.error


class TestAttachmentCache:
    def test_eviction_drops_the_oldest_attachment(self):
        worker = make_worker()  # _ATTACH_CACHE == 2
        frames = [put_frame(np.full((2, 2), float(i))) for i in range(3)]
        try:
            for frame in frames:
                worker._attachment(frame.ref)
            # LRU, not MRU: the first-attached frame is the one evicted
            assert set(worker.attachments) == {
                frames[1].ref.name, frames[2].ref.name,
            }
        finally:
            for attachment in worker.attachments.values():
                attachment.close()
            for frame in frames:
                frame.close()


class TestVersionedRouting:
    def test_task_admitted_under_rolled_version_fails_loudly(self, cluster):
        """A task stamped with a version no replica serves (and none
        ever will) must fail with a clear error, never be silently
        scored by different weights or wait forever."""
        from repro.serve.cluster.service import _FrameHolder

        holder = _FrameHolder(np.zeros((1, 1, 16, 16)), None)
        msg = ClassifyTask(
            task_id=-1, model="default", version=99, frame=holder.ref,
        )
        with cluster._cond:
            task = cluster._submit_locked(msg, holder)
        assert task.event.wait(timeout=60)
        assert task.error is not None
        assert "v99" in str(task.error)
