"""Chaos tests for the cluster: crashes, hangs, torn frames, rollouts.

Every scenario asserts the same bottom line the paper-scale deployment
needs: process-level faults may cost latency, never correctness — the
served scores stay bit-identical to an unfaulted in-process reference,
and the typed fault counters prove the failure actually happened (a
chaos test that passes without its fault firing is testing nothing).
"""

import threading
import time

import numpy as np
import pytest

from repro.litho.geometry import Clip, Rect
from repro.models.bnn_resnet import build_bnn_resnet
from repro.serve import (
    ClipRequest,
    ClusterService,
    FaultInjector,
    HealthState,
    HotspotService,
    ReplicaState,
    RolloutError,
    ScanRequest,
)

pytestmark = [pytest.mark.slow, pytest.mark.timeout(300)]


@pytest.fixture(scope="module")
def model():
    return build_bnn_resnet((4, 8), scaling="xnor", seed=0)


@pytest.fixture(scope="module")
def scan_req():
    rng = np.random.default_rng(3)
    layout = Clip(256)
    for _ in range(40):
        x0 = int(rng.integers(0, 216))
        y0 = int(rng.integers(0, 216))
        layout.add(Rect(x0, y0, x0 + int(rng.integers(8, 40)),
                        y0 + int(rng.integers(8, 40))))
    return ScanRequest(layout=layout, window=64, stride=32)


@pytest.fixture(scope="module")
def reference_hits(model, scan_req):
    with HotspotService.from_model(model, image_size=16) as ref:
        return [(h.x0, h.y0, h.score) for h in ref.scan(scan_req).hits]


def make_cluster(model, faults=None, **overrides):
    knobs = dict(processes=2, heartbeat_s=0.2, heartbeat_timeout_s=5.0,
                 respawn_backoff_s=0.1, faults=faults)
    knobs.update(overrides)
    return ClusterService.from_model(model, image_size=16, **knobs)


def hit_key(report):
    return [(h.x0, h.y0, h.score) for h in report.hits]


class TestCrashFailover:
    def test_sigkill_mid_batch_fails_over_bit_identically(
        self, model, scan_req, reference_hits
    ):
        faults = FaultInjector(seed=0)
        faults.add_kill("worker:0", on_calls=[1])  # slot 0 dies in-flight
        with make_cluster(model, faults) as svc:
            report = svc.scan(scan_req, timeout=120)
            stats = svc.stats()
        assert not report.degraded
        assert hit_key(report) == reference_hits
        assert stats["workers_reaped_total"] >= 1
        assert stats["tasks_failed_over_total"] >= 1

    def test_killed_slot_respawns_ready(self, model):
        faults = FaultInjector(seed=0)
        faults.add_kill("worker:0", on_calls=[0])
        with make_cluster(model, faults) as svc:
            image = np.zeros((16, 16))
            svc.classify(ClipRequest(image=image), timeout=120)
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                states = svc.replica_states()
                if all(s is ReplicaState.READY for s in states.values()):
                    break
                time.sleep(0.1)
            assert all(s is ReplicaState.READY
                       for s in svc.replica_states().values())
            assert svc.stats()["workers_spawned_total"] >= 3  # 2 + respawn


class TestHangDetection:
    def test_hung_worker_is_killed_and_work_fails_over(
        self, model, scan_req, reference_hits
    ):
        faults = FaultInjector(seed=0)
        faults.add_hang("worker", hang_s=60.0, times=1)
        with make_cluster(model, faults, heartbeat_timeout_s=1.0,
                          task_timeout_s=1.0) as svc:
            report = svc.scan(scan_req, timeout=120)
            stats = svc.stats()
        assert not report.degraded
        assert hit_key(report) == reference_hits
        assert stats["worker_timeouts_total"] >= 1
        assert stats["tasks_failed_over_total"] >= 1

    def test_busy_worker_is_not_mistaken_for_hung(
        self, model, scan_req, reference_hits
    ):
        # a legitimately slow task blocks the single-threaded worker's
        # ping loop for far longer than heartbeat_timeout_s; the
        # supervisor must treat in-flight work as proof of life and
        # never kill it (busy != hung)
        faults = FaultInjector(seed=0)
        faults.add_hang("worker", hang_s=2.0, times=1)
        with make_cluster(model, faults, heartbeat_s=0.1,
                          heartbeat_timeout_s=0.5) as svc:
            report = svc.scan(scan_req, timeout=120)
            stats = svc.stats()
        assert not report.degraded
        assert hit_key(report) == reference_hits
        assert stats["worker_timeouts_total"] == 0
        assert stats["workers_reaped_total"] == 0


class TestFrameIntegrity:
    def test_torn_frame_retried_never_scored(
        self, model, scan_req, reference_hits
    ):
        faults = FaultInjector(seed=0)
        faults.add_tear("frame", times=1)  # one torn write, then clean
        with make_cluster(model, faults) as svc:
            report = svc.scan(scan_req, timeout=120)
            stats = svc.stats()
        assert not report.degraded
        assert hit_key(report) == reference_hits  # torn bytes never scored
        assert stats["frame_retries_total"] >= 1


class TestQuarantine:
    def test_crash_loop_quarantines_slot_and_degrades_health(self, model):
        faults = FaultInjector(seed=0)
        faults.add_kill("worker:0")  # every task on slot 0 is fatal
        with make_cluster(
            model, faults, faults_in_respawn=True,
            respawn_backoff_s=0.05, quarantine_after=2,
        ) as svc:
            image = np.zeros((16, 16))
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                svc.classify(ClipRequest(image=image), timeout=120)
                if svc.stats()["slots_quarantined_total"] >= 1:
                    break
            states = svc.replica_states()
            assert states[0] is ReplicaState.QUARANTINED
            assert states[1] is ReplicaState.READY  # sibling still serves
            report = svc.health()
            assert report.state is HealthState.DEGRADED
            assert any("quarantined" in r for r in report.reasons)


class TestRollingRollout:
    def test_rollout_under_load_drops_nothing(self, model):
        new_model = build_bnn_resnet((4, 8), scaling="xnor", seed=7)
        rng = np.random.default_rng(0)
        rasters = [(rng.random((16, 16)) > 0.5).astype(float)
                   for _ in range(8)]
        reqs = lambda: [ClipRequest(image=r) for r in rasters]  # noqa: E731
        with HotspotService.from_model(new_model, image_size=16) as ref:
            want = [ref.classify(r).score for r in reqs()]

        with make_cluster(model, heartbeat_timeout_s=10.0) as svc:
            stop = threading.Event()
            errors, states_seen = [], set()

            def pound():
                while not stop.is_set():
                    try:
                        svc.classify_many(reqs(), timeout=120)
                    except BaseException as exc:
                        errors.append(exc)
                        return
                    states_seen.update(svc.replica_states().values())

            thread = threading.Thread(target=pound, daemon=True)
            thread.start()
            time.sleep(0.3)
            svc.rollout("default", model=new_model)
            time.sleep(0.3)
            stop.set()
            thread.join(timeout=120)

            assert not errors  # zero dropped requests through the swap
            assert ReplicaState.DRAINING in states_seen
            got = [p.score for p in svc.classify_many(reqs(), timeout=120)]
            stats = svc.stats()

        assert got == want  # bit-identical to the new weights
        assert stats["rollouts_total"] == 1
        assert stats["rollout_failures_total"] == 0
        versions = stats["cluster"]["fleet"]["default"]["versions"]
        assert versions == ["2"]

    def test_failed_canary_rolls_back(self, model):
        class NotAModel:
            """Fails router-side compilation: the rollout must abort in
            step 1 (register), before any replica is drained."""

        with make_cluster(model) as svc:
            image = np.zeros((16, 16))
            before = svc.classify(ClipRequest(image=image), timeout=120)
            with pytest.raises(Exception):
                svc.rollout("default", model=NotAModel())
            assert svc.stats()["rollout_failures_total"] == 1
            # fleet still serves the old model, bit-identically
            after = svc.classify(ClipRequest(image=image), timeout=120)
            assert after.score == before.score
            states = svc.replica_states()
            assert all(s is ReplicaState.READY for s in states.values())

    def test_canary_mismatch_after_load_rolls_back_failing_replica(
        self, model, monkeypatch
    ):
        """The hard rollback path: the swap *loads* fine, then the
        canary probe fails.  The failing replica itself must be rolled
        back to the old checkpoint before it is readmitted — an aborted
        rollout must never leave a replica serving parity-failing
        weights (nor a mixed-version fleet)."""
        import repro.serve.cluster.worker as worker_mod

        real_compile = worker_mod._compile

        def skewed_compile(spec):
            served = real_compile(spec)
            if spec.version < 2:
                return served
            engine = served.engine

            class SkewedEngine:
                """Scores v2 differently from the router's reference."""

                def __getattr__(self, attr):
                    return getattr(engine, attr)

                def predict_logits(self, batch, **kwargs):
                    return engine.predict_logits(batch, **kwargs) + 1.0

            return worker_mod._Served(
                spec=served.spec, engine=SkewedEngine(),
                provenance=served.provenance,
            )

        # patched before the fleet forks, so every worker inherits it;
        # only v2 engines are skewed — v1 (and the rollback reload)
        # stay bit-identical to the router's reference
        monkeypatch.setattr(worker_mod, "_compile", skewed_compile)

        new_model = build_bnn_resnet((4, 8), scaling="xnor", seed=7)
        with make_cluster(model) as svc:
            image = np.zeros((16, 16))
            before = svc.classify(ClipRequest(image=image), timeout=120)
            with pytest.raises(RolloutError):
                svc.rollout("default", model=new_model)
            stats = svc.stats()
            assert stats["rollout_failures_total"] == 1
            # every replica — including the one whose canary failed —
            # is READY again and back on the old checkpoint
            states = svc.replica_states()
            assert all(s is ReplicaState.READY for s in states.values())
            fleet = stats["cluster"]["fleet"]["default"]
            assert fleet["versions"] == ["1"]
            report = svc.health()
            assert not any("mixed versions" in r for r in report.reasons)
            after = svc.classify(ClipRequest(image=image), timeout=120)
            assert after.score == before.score
