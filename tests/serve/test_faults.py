"""Chaos suite: the service under injected faults.

The acceptance bar for the fault-tolerance layer: with injected engine
exceptions, latency spikes, and corrupt checkpoints, the service never
hangs past its deadline, healthy co-batched/co-sharded requests still
return bit-identical predictions, and degraded scan reports enumerate
exactly the failed window ranges.  Every fault here is driven by the
seeded :class:`FaultInjector`, so failures reproduce.
"""

import time

import numpy as np
import pytest

from repro.litho.geometry import Clip, Rect
from repro.models.bnn_resnet import build_bnn_resnet
from repro.nn.serialization import CheckpointError, load_model, save_model
from repro.serve import (
    DeadlineExceeded,
    FaultInjector,
    HealthState,
    HotspotService,
    InjectedFault,
    ModelRegistry,
    ScanRequest,
    window_origins,
)
from repro.serve.pool import shard_slices


@pytest.fixture(scope="module")
def model():
    return build_bnn_resnet((4, 8), scaling="xnor", seed=0)


def make_images(n=8, size=16, seed=0):
    rng = np.random.default_rng(seed)
    return (rng.random((n, size, size)) < 0.3).astype(float)


def make_layout(size=2048, seed=1, n=30):
    rng = np.random.default_rng(seed)
    layout = Clip(size)
    for _ in range(n):
        x0 = int(rng.integers(0, size - 200))
        y0 = int(rng.integers(0, size - 200))
        layout.add(Rect(x0, y0, x0 + int(rng.integers(60, 180)),
                        y0 + int(rng.integers(60, 180))))
    return layout


class TestFaultInjector:
    def test_on_calls_is_deterministic(self):
        faults = FaultInjector(seed=0)
        faults.add_error("site", on_calls=[1, 3])
        fn = faults.wrap("site", lambda: "ok")
        results = []
        for _ in range(5):
            try:
                results.append(fn())
            except InjectedFault:
                results.append("boom")
        assert results == ["ok", "boom", "ok", "boom", "ok"]
        assert faults.calls("site") == 5

    def test_times_budget_exhausts(self):
        faults = FaultInjector(seed=0)
        faults.add_error("site", times=2)
        fn = faults.wrap("site", lambda: "ok")
        outcomes = []
        for _ in range(4):
            try:
                outcomes.append(fn())
            except InjectedFault:
                outcomes.append("boom")
        assert outcomes == ["boom", "boom", "ok", "ok"]

    def test_seeded_probability_reproduces(self):
        def run():
            faults = FaultInjector(seed=42)
            faults.add_error("s", probability=0.5)
            fn = faults.wrap("s", lambda: True)
            out = []
            for _ in range(20):
                try:
                    out.append(fn())
                except InjectedFault:
                    out.append(False)
            return out

        first, second = run(), run()
        assert first == second
        assert False in first and True in first

    def test_corruption_negates_array_output(self):
        faults = FaultInjector(seed=0)
        faults.add_corruption("site", on_calls=[1])
        fn = faults.wrap("site", lambda: np.arange(3.0))
        np.testing.assert_array_equal(fn(), [0.0, 1.0, 2.0])
        np.testing.assert_array_equal(fn(), [-0.0, -1.0, -2.0])

    def test_latency_rule_sleeps(self):
        faults = FaultInjector(seed=0)
        faults.add_latency("site", latency_ms=50.0, times=1)
        fn = faults.wrap("site", lambda: None)
        started = time.perf_counter()
        fn()
        assert time.perf_counter() - started >= 0.045
        started = time.perf_counter()
        fn()  # budget spent: no sleep
        assert time.perf_counter() - started < 0.045

    def test_match_predicate_targets_arguments(self):
        """A ``match`` rule fires only on calls whose first positional
        argument satisfies the predicate — the spatially-targeted
        poison used by the durable chip scan's chaos tests."""
        faults = FaultInjector(seed=0)
        faults.add_error("site", match=lambda args: args[0] == "poison")
        fn = faults.wrap("site", lambda tag: tag)
        assert fn("healthy") == "healthy"
        with pytest.raises(InjectedFault):
            fn("poison")
        assert fn("healthy") == "healthy"
        with pytest.raises(InjectedFault):
            fn("poison")  # no times= budget: fires every matching call

    def test_match_rule_ignores_argless_fire(self):
        """Bare ``fire(site)`` probes carry no args, so a match rule
        must not trigger on them (matching nothing is never a fault)."""
        faults = FaultInjector(seed=0)
        faults.add_error("site", match=lambda args: True)
        faults.fire("site")  # must not raise
        with pytest.raises(InjectedFault):
            faults.wrap("site", lambda x: x)(1)

    def test_custom_exception_and_clear(self):
        faults = FaultInjector(seed=0)
        faults.add_error("site", error=KeyError("kaboom"))
        with pytest.raises(KeyError):
            faults.wrap("site", lambda: None)()
        faults.clear("site")
        faults.wrap("site", lambda: None)()  # rules gone


class TestClassifyUnderFaults:
    def test_transient_engine_error_recovers_bit_identically(self, model):
        """A one-off engine crash fails the batch, bisection re-runs it,
        and every request still gets the healthy-service prediction."""
        images = make_images(12, seed=3)
        with HotspotService.from_model(model, 16) as healthy:
            expected = [p.score for p in healthy.classify_many(list(images))]

        faults = FaultInjector(seed=0)
        faults.add_error("engine", on_calls=[0])  # first invocation dies
        with HotspotService.from_model(model, 16, max_wait_ms=20.0,
                                       faults=faults) as svc:
            predictions = svc.classify_many(list(images))
            stats = svc.stats()
        assert [p.score for p in predictions] == expected
        assert faults.calls("engine") >= 2  # the failure plus re-runs
        assert stats["batch_splits_total"] >= 1

    def test_latency_spike_hits_deadline_not_forever(self, model):
        faults = FaultInjector(seed=0)
        faults.add_latency("engine", latency_ms=2000.0)
        svc = HotspotService.from_model(model, 16, faults=faults)
        started = time.perf_counter()
        with pytest.raises(DeadlineExceeded):
            svc.classify(make_images(1)[0], timeout=0.15)
        elapsed = time.perf_counter() - started
        assert elapsed < 5.0  # bounded by the deadline, not the spike
        assert svc.metrics.timeouts_total >= 1
        assert svc.health().state is HealthState.DEGRADED
        # the wedged engine call is still sleeping; a bounded close must
        # report the leak instead of silently returning
        batcher = svc._batchers["default"][1]
        with pytest.raises(RuntimeError, match="failed to stop"):
            batcher.close(timeout=0.2)
        time.sleep(2.1)  # let the abandoned call drain
        svc.close()

    def test_raster_fault_fails_only_its_request(self, model):
        images = make_images(4, seed=4)
        clip = Clip(256, [Rect(10, 10, 120, 200)])
        faults = FaultInjector(seed=0)
        faults.add_error("raster")
        with HotspotService.from_model(model, 16, faults=faults) as svc:
            with pytest.raises(InjectedFault):
                svc.classify(clip)  # geometry -> rasterized -> fault
            # image requests skip rasterization entirely
            predictions = svc.classify_many(list(images))
        assert len(predictions) == 4


class TestScanUnderFaults:
    def test_all_shards_failing_enumerates_every_range(self, model):
        layout = make_layout(seed=5)
        request = ScanRequest(layout, window=512, stride=128)
        origins = window_origins(2048, 512, 128)
        faults = FaultInjector(seed=0)
        faults.add_error("engine")
        with HotspotService.from_model(model, 16, workers=4, faults=faults,
                                       shard_retries=0) as svc:
            report = svc.scan(request)
        expected_ranges = tuple(
            (s.start, s.stop) for s in shard_slices(len(origins), 4)
        )
        assert report.degraded
        assert report.failed_ranges == expected_ranges
        assert report.windows_failed == len(origins)
        assert report.hits == ()

    def test_partial_failure_keeps_healthy_shards_bit_identical(self, model):
        """Failed ranges account for exactly the missing windows; every
        surviving window's score matches the healthy sweep bit for bit."""
        layout = make_layout(seed=6)
        request = ScanRequest(layout, window=512, stride=128)
        origins = window_origins(2048, 512, 128)
        with HotspotService.from_model(model, 16, workers=4) as healthy:
            reference = healthy.scan(request)

        faults = FaultInjector(seed=0)
        faults.add_error("engine", times=2)
        with HotspotService.from_model(model, 16, workers=4, faults=faults,
                                       shard_retries=0) as svc:
            report = svc.scan(request)
            stats = svc.stats()
        assert report.degraded and report.failed_ranges
        # which shards died depends on scheduling; exactness does not:
        # the surviving hits must be the reference hits outside the
        # failed ranges, nothing more, nothing less, bit-identical
        index_of = {origin: i for i, origin in enumerate(origins)}

        def failed(hit):
            i = index_of[(hit.x0, hit.y0)]
            return any(start <= i < stop
                       for start, stop in report.failed_ranges)

        expected_hits = tuple(h for h in reference.hits if not failed(h))
        assert report.hits == expected_hits
        assert report.windows_failed == sum(
            stop - start for start, stop in report.failed_ranges
        )
        assert stats["degraded_scans_total"] == 1
        assert stats["health"] == "degraded"

    def test_shard_retry_heals_transient_fault(self, model):
        layout = make_layout(size=512, seed=7, n=10)
        request = ScanRequest(layout, window=128, stride=64)
        with HotspotService.from_model(model, 16, workers=2) as healthy:
            reference = healthy.scan(request)

        faults = FaultInjector(seed=0)
        faults.add_error("engine", times=1)
        with HotspotService.from_model(model, 16, workers=2, faults=faults,
                                       shard_retries=1) as svc:
            report = svc.scan(request)
        assert not report.degraded
        assert report.failed_ranges == ()
        assert report.hits == reference.hits  # bit-identical after retry
        assert svc.metrics.shard_retries_total >= 1

    def test_scan_deadline_bounds_wall_clock(self, model):
        layout = make_layout(size=512, seed=8, n=10)
        request = ScanRequest(layout, window=128, stride=128)
        faults = FaultInjector(seed=0)
        faults.add_latency("engine", latency_ms=1500.0)
        with HotspotService.from_model(model, 16, workers=4,
                                       faults=faults) as svc:
            started = time.perf_counter()
            report = svc.scan(request, timeout=0.2)
            elapsed = time.perf_counter() - started
        assert elapsed < 5.0  # deadline, not 1.5s x shard count
        assert report.degraded
        assert report.windows_failed == report.windows_scanned
        for start, stop in report.failed_ranges:
            assert stop > start

    def test_shutdown_bounded_after_timed_out_scan(self, model):
        """A ``DeadlineExceeded`` scan abandons its wedged shard threads
        by design (threads cannot be killed); ``close()`` must then
        still finish within its own timeout — raising on the leak — not
        wait on the abandoned work forever."""
        layout = make_layout(size=512, seed=8, n=10)
        request = ScanRequest(layout, window=128, stride=128)
        faults = FaultInjector(seed=0)
        faults.add_latency("engine", latency_ms=3000.0)
        svc = HotspotService.from_model(model, 16, workers=2, faults=faults)
        report = svc.scan(request, timeout=0.2)
        assert report.degraded
        started = time.perf_counter()
        with pytest.raises(RuntimeError, match="failed to stop"):
            svc.close(timeout=0.3)
        assert time.perf_counter() - started < 2.0

    def test_corrupted_engine_output_stays_contained(self, model):
        """Score corruption flips predictions but never breaks the sweep:
        the report is structurally sound and non-degraded."""
        layout = make_layout(size=512, seed=9, n=10)
        request = ScanRequest(layout, window=128, stride=64)
        faults = FaultInjector(seed=0)
        faults.add_corruption("engine")
        with HotspotService.from_model(model, 16, workers=2,
                                       faults=faults) as svc:
            report = svc.scan(request)
        assert not report.degraded
        assert report.windows_scanned == len(window_origins(512, 128, 64))


class TestCorruptCheckpoints:
    def test_bitrot_raises_typed_error(self, model, tmp_path):
        path = save_model(model, tmp_path / "ckpt", meta={"image_size": 16})
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        registry = ModelRegistry()
        with pytest.raises(CheckpointError, match="ckpt"):
            registry.load_checkpoint("m", path)
        assert len(registry) == 0  # nothing half-registered

    def test_truncation_raises_typed_error(self, model, tmp_path):
        path = save_model(model, tmp_path / "ckpt", meta={"image_size": 16})
        path.write_bytes(path.read_bytes()[:128])
        with pytest.raises(CheckpointError):
            ModelRegistry().load_checkpoint("m", path)

    def test_checksum_catches_valid_zip_with_tampered_weights(
        self, model, tmp_path
    ):
        """Re-zipped tampering passes every CRC; the content checksum
        still refuses it."""
        path = save_model(model, tmp_path / "ckpt", meta={"image_size": 16})
        with np.load(path) as archive:
            arrays = {key: archive[key] for key in archive.files}
        param = next(k for k in arrays if not k.startswith("__meta__."))
        tampered = dict(arrays)
        tampered[param] = arrays[param] + 1.0  # stale checksum kept
        np.savez(path, **tampered)
        fresh = build_bnn_resnet((4, 8), scaling="xnor", seed=1)
        with pytest.raises(CheckpointError, match="checksum"):
            load_model(fresh, path)

    def test_tampered_meta_threshold_refused(self, model, tmp_path):
        """The registry rebuilds architecture and decision threshold
        from the meta record, so meta is covered by its own checksum: a
        valid-zip flip of the decision threshold is refused, not served.
        """
        path = save_model(model, tmp_path / "ckpt",
                          meta={"image_size": 16, "decision_bias": 0.5})
        with np.load(path) as archive:
            arrays = {key: archive[key] for key in archive.files}
        tampered = dict(arrays)
        tampered["__meta__.decision_bias"] = np.asarray(-0.5)  # stale digest
        np.savez(path, **tampered)
        registry = ModelRegistry()
        with pytest.raises(CheckpointError, match="metadata checksum"):
            registry.load_checkpoint("m", path)
        assert len(registry) == 0  # nothing half-registered

    def test_service_keeps_serving_old_model_after_bad_rollout(
        self, model, tmp_path
    ):
        good = save_model(model, tmp_path / "good",
                          meta={"image_size": 16, "base_width": 4})
        registry = ModelRegistry()
        registry.load_checkpoint("prod", good)
        bad = tmp_path / "bad.npz"
        bad.write_bytes(good.read_bytes()[:200])
        with pytest.raises(CheckpointError):
            registry.load_checkpoint("prod", bad)  # rolling update fails
        with HotspotService(registry, default_model="prod") as svc:
            prediction = svc.classify(make_images(1)[0])
        assert prediction.model == "prod"  # previous entry still serves
