"""Tests for the scan worker pool's sharding arithmetic and mapping."""

import threading
import time

import numpy as np
import pytest

from repro.serve.errors import DeadlineExceeded, ShardError
from repro.serve.pool import WorkerPool, shard_slices


class TestShardSlices:
    def test_even_split(self):
        assert shard_slices(8, 4) == [
            slice(0, 2), slice(2, 4), slice(4, 6), slice(6, 8)
        ]

    def test_uneven_split_front_loads_remainder(self):
        slices = shard_slices(10, 3)
        sizes = [s.stop - s.start for s in slices]
        assert sizes == [4, 3, 3]
        assert slices[0].start == 0 and slices[-1].stop == 10

    def test_zero_items_yields_no_shards(self):
        assert shard_slices(0, 4) == []

    def test_more_shards_than_items_drops_empties(self):
        slices = shard_slices(3, 8)
        assert len(slices) == 3
        assert all(s.stop - s.start == 1 for s in slices)

    def test_covers_range_without_gaps(self):
        for n_items in (1, 5, 17, 100):
            for n_shards in (1, 2, 7, 200):
                covered = []
                for s in shard_slices(n_items, n_shards):
                    covered.extend(range(n_items)[s])
                assert covered == list(range(n_items))


class TestMapShards:
    @pytest.fixture
    def pool(self):
        with WorkerPool(workers=4) as pool:
            yield pool

    def test_flattens_in_order(self, pool):
        items = list(range(23))
        out = pool.map_shards(lambda shard: [x * 2 for x in shard], items)
        assert out == [x * 2 for x in items]

    def test_empty_items(self, pool):
        assert pool.map_shards(lambda shard: list(shard), []) == []

    def test_more_shards_than_items(self, pool):
        out = pool.map_shards(lambda shard: list(shard), [1, 2], shards=10)
        assert out == [1, 2]

    def test_non_list_sequences(self, pool):
        """range, tuple and numpy arrays all shard (no truthiness traps)."""
        assert pool.map_shards(lambda s: [x + 1 for x in s], range(9)) == list(
            range(1, 10)
        )
        assert pool.map_shards(lambda s: list(s), (4, 5, 6)) == [4, 5, 6]
        arr = np.arange(11)
        assert pool.map_shards(lambda s: s.tolist(), arr) == arr.tolist()
        empty = np.empty(0)
        assert pool.map_shards(lambda s: s.tolist(), empty) == []

    def test_single_worker_runs_inline(self):
        with WorkerPool(workers=1) as pool:
            out = pool.map_shards(lambda shard: [x**2 for x in shard],
                                  [1, 2, 3])
        assert out == [1, 4, 9]

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            WorkerPool(workers=0)


class TestShardFailures:
    @pytest.fixture
    def pool(self):
        with WorkerPool(workers=4) as pool:
            yield pool

    def test_shard_error_carries_exact_range(self, pool):
        def fn(shard):
            if 5 in shard:
                raise ValueError("bad window")
            return list(shard)

        with pytest.raises(ShardError) as excinfo:
            pool.map_shards(fn, list(range(16)))  # 4 shards of 4
        assert (excinfo.value.start, excinfo.value.stop) == (4, 8)
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_single_shard_failure_also_attributed(self):
        with WorkerPool(workers=1) as pool:
            with pytest.raises(ShardError) as excinfo:
                pool.map_shards(lambda s: 1 // 0, [1, 2, 3])
        assert (excinfo.value.start, excinfo.value.stop) == (0, 3)

    def test_failure_cancels_not_yet_started_shards(self):
        """With one worker, shards run serially: after shard 2 fails the
        caller cancels the queue.  The worker may have already grabbed
        shard 3 (that race is inherent), but shard 4 — still queued
        behind either a busy worker or a cancelled future — never runs."""
        executed = []

        def fn(shard):
            executed.append(shard[0])
            if shard[0] == 4:
                raise RuntimeError("boom")
            if shard[0] == 8:
                time.sleep(0.3)  # hold the worker while cancels land
            return list(shard)

        with WorkerPool(workers=1) as pool:
            with pytest.raises(ShardError) as excinfo:
                pool.map_shards(fn, list(range(16)), shards=4)
        assert (excinfo.value.start, excinfo.value.stop) == (4, 8)
        assert executed[:2] == [0, 4]
        assert 12 not in executed  # the final shard was cancelled

    def test_map_timeout_raises_deadline(self):
        release = threading.Event()

        def hung(shard):
            release.wait(10)
            return list(shard)

        with WorkerPool(workers=2) as pool:
            started = time.perf_counter()
            try:
                with pytest.raises(DeadlineExceeded):
                    pool.map_shards(hung, list(range(8)), timeout=0.1)
                assert time.perf_counter() - started < 5.0
            finally:
                release.set()


class TestMapShardsTolerant:
    @pytest.fixture
    def pool(self):
        with WorkerPool(workers=4) as pool:
            yield pool

    def test_partial_failure_keeps_healthy_shards(self, pool):
        def fn(shard):
            if 5 in shard:
                raise ValueError("bad shard")
            return [x * 2 for x in shard]

        outcomes = pool.map_shards_tolerant(fn, list(range(16)), retries=0)
        assert [(o.start, o.stop, o.ok) for o in outcomes] == [
            (0, 4, True), (4, 8, False), (8, 12, True), (12, 16, True)
        ]
        assert outcomes[0].results == [0, 2, 4, 6]
        assert isinstance(outcomes[1].error, ValueError)
        assert outcomes[1].results is None

    def test_retry_heals_transient_failure(self, pool):
        failed_once = threading.Event()

        def flaky(shard):
            if 5 in shard and not failed_once.is_set():
                failed_once.set()
                raise ValueError("transient")
            return [x * 2 for x in shard]

        outcomes = pool.map_shards_tolerant(flaky, list(range(16)), retries=1)
        assert all(o.ok for o in outcomes)
        assert outcomes[1].retries == 1
        assert outcomes[1].results == [8, 10, 12, 14]

    def test_persistent_failure_exhausts_retries(self, pool):
        attempts = []

        def broken(shard):
            if 5 in shard:
                attempts.append(1)
                raise ValueError("persistent")
            return list(shard)

        outcomes = pool.map_shards_tolerant(broken, list(range(16)), retries=2)
        assert not outcomes[1].ok
        assert outcomes[1].retries == 2
        assert len(attempts) == 3  # initial run + two retries

    def test_timeout_fails_pending_shards_only(self, pool):
        release = threading.Event()

        def mixed(shard):
            if shard[0] >= 8:
                release.wait(10)  # the back half hangs
            return list(shard)

        started = time.perf_counter()
        try:
            outcomes = pool.map_shards_tolerant(
                mixed, list(range(16)), timeout=0.3
            )
        finally:
            release.set()
        assert time.perf_counter() - started < 5.0
        assert outcomes[0].ok and outcomes[1].ok
        assert not outcomes[2].ok and not outcomes[3].ok
        assert isinstance(outcomes[2].error, DeadlineExceeded)

    def test_empty_items(self, pool):
        assert pool.map_shards_tolerant(lambda s: list(s), []) == []


class TestClose:
    def test_close_bounded_when_worker_wedged(self):
        """A shard abandoned by a timed-out map cannot block ``close()``
        forever: the leak surfaces as ``RuntimeError`` within the close
        timeout (regression: ``close()`` used ``shutdown(wait=True)``
        and hung on the wedged thread, so a service that survived a
        ``DeadlineExceeded`` scan could never shut down)."""
        release = threading.Event()

        def wedge(shard):
            release.wait(30)
            return list(shard)

        pool = WorkerPool(workers=1)
        try:
            outcomes = pool.map_shards_tolerant(
                wedge, list(range(4)), timeout=0.1
            )
            assert [o.ok for o in outcomes] == [False]
            started = time.perf_counter()
            with pytest.raises(RuntimeError, match="failed to stop"):
                pool.close(timeout=0.2)
            assert time.perf_counter() - started < 2.0
        finally:
            release.set()
            pool.close(timeout=10.0)  # joins cleanly once unwedged
