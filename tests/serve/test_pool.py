"""Tests for the scan worker pool's sharding arithmetic and mapping."""

import numpy as np
import pytest

from repro.serve.pool import WorkerPool, shard_slices


class TestShardSlices:
    def test_even_split(self):
        assert shard_slices(8, 4) == [
            slice(0, 2), slice(2, 4), slice(4, 6), slice(6, 8)
        ]

    def test_uneven_split_front_loads_remainder(self):
        slices = shard_slices(10, 3)
        sizes = [s.stop - s.start for s in slices]
        assert sizes == [4, 3, 3]
        assert slices[0].start == 0 and slices[-1].stop == 10

    def test_zero_items_yields_no_shards(self):
        assert shard_slices(0, 4) == []

    def test_more_shards_than_items_drops_empties(self):
        slices = shard_slices(3, 8)
        assert len(slices) == 3
        assert all(s.stop - s.start == 1 for s in slices)

    def test_covers_range_without_gaps(self):
        for n_items in (1, 5, 17, 100):
            for n_shards in (1, 2, 7, 200):
                covered = []
                for s in shard_slices(n_items, n_shards):
                    covered.extend(range(n_items)[s])
                assert covered == list(range(n_items))


class TestMapShards:
    @pytest.fixture
    def pool(self):
        with WorkerPool(workers=4) as pool:
            yield pool

    def test_flattens_in_order(self, pool):
        items = list(range(23))
        out = pool.map_shards(lambda shard: [x * 2 for x in shard], items)
        assert out == [x * 2 for x in items]

    def test_empty_items(self, pool):
        assert pool.map_shards(lambda shard: list(shard), []) == []

    def test_more_shards_than_items(self, pool):
        out = pool.map_shards(lambda shard: list(shard), [1, 2], shards=10)
        assert out == [1, 2]

    def test_non_list_sequences(self, pool):
        """range, tuple and numpy arrays all shard (no truthiness traps)."""
        assert pool.map_shards(lambda s: [x + 1 for x in s], range(9)) == list(
            range(1, 10)
        )
        assert pool.map_shards(lambda s: list(s), (4, 5, 6)) == [4, 5, 6]
        arr = np.arange(11)
        assert pool.map_shards(lambda s: s.tolist(), arr) == arr.tolist()
        empty = np.empty(0)
        assert pool.map_shards(lambda s: s.tolist(), empty) == []

    def test_single_worker_runs_inline(self):
        with WorkerPool(workers=1) as pool:
            out = pool.map_shards(lambda shard: [x**2 for x in shard],
                                  [1, 2, 3])
        assert out == [1, 4, 9]

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            WorkerPool(workers=0)
