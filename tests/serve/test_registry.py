"""Tests for the model registry and checkpoint round-trips."""

import warnings

import numpy as np
import pytest

from repro.binary.inference import FloatEngine, PackedBNN
from repro.features.downsample import to_network_input
from repro.models.bnn_resnet import build_bnn_resnet
from repro.nn import Dense, Module, Sequential, load_meta, save_model
from repro.serve import ModelRegistry, compile_engine, model_from_meta


def make_model(seed=0, image_size=16, base_width=4, scaling="xnor"):
    channels = (base_width, base_width * 2)
    return build_bnn_resnet(channels, scaling=scaling, seed=seed)


def make_images(n=12, size=16, seed=3):
    rng = np.random.default_rng(seed)
    return to_network_input((rng.random((n, size, size)) < 0.3).astype(float))


class Unsupported(Module):
    """A layer type the packed compiler cannot handle."""

    def forward(self, x, training=False):
        return np.tanh(x)


class TestCompileEngine:
    def test_packed_by_default(self):
        engine, backend = compile_engine(make_model())
        assert backend == "packed" and isinstance(engine, PackedBNN)

    def test_float_on_request(self):
        engine, backend = compile_engine(make_model(), prefer_packed=False)
        assert backend == "float" and isinstance(engine, FloatEngine)

    def test_graceful_fallback_on_unsupported_layer(self):
        model = Sequential(Unsupported(), Dense(4, 2,
                                                rng=np.random.default_rng(0)))
        engine, backend = compile_engine(model)
        assert backend == "float"
        x = np.random.default_rng(1).normal(size=(3, 4))
        np.testing.assert_array_equal(engine.forward(x),
                                      model.forward(x, training=False))


class TestModelRegistry:
    def test_register_get_names(self):
        registry = ModelRegistry()
        entry = registry.register("m", make_model(), image_size=16)
        assert registry.get("m") is entry
        assert "m" in registry and registry.names() == ["m"] and len(registry) == 1

    def test_unknown_name_lists_known(self):
        registry = ModelRegistry()
        registry.register("present", make_model(), image_size=16)
        with pytest.raises(KeyError, match="present"):
            registry.get("absent")

    def test_reregister_replaces(self):
        registry = ModelRegistry()
        registry.register("m", make_model(seed=0), image_size=16)
        second = registry.register("m", make_model(seed=9), image_size=16)
        assert registry.get("m") is second and len(registry) == 1


class TestCheckpointRoundTrip:
    def test_packed_predictions_bit_identical_after_reload(self, tmp_path):
        """save -> fresh architecture -> load -> compile == in-memory."""
        model = make_model(seed=1)
        # non-trivial BN running stats
        model.forward(make_images(seed=5), training=True)
        path = save_model(model, tmp_path / "trained.npz")

        fresh = make_model(seed=999)  # different init, same architecture
        from repro.nn import load_model

        load_model(fresh, path)
        images = make_images(seed=6)
        original = PackedBNN(model).predict_logits(images)
        reloaded = PackedBNN(fresh).predict_logits(images)
        np.testing.assert_array_equal(reloaded, original)

    def test_load_checkpoint_rebuilds_from_meta(self, tmp_path):
        model = make_model(seed=2, base_width=4)
        model.forward(make_images(seed=7), training=True)
        path = save_model(model, tmp_path / "ck", meta={
            "image_size": 16, "base_width": 4, "scaling": "xnor",
            "stem_stride": 1, "decision_bias": 0.125,
        })
        assert path.name == "ck.npz"

        registry = ModelRegistry()
        entry = registry.load_checkpoint("served", tmp_path / "ck")
        assert entry.backend == "packed"
        assert entry.image_size == 16
        assert entry.decision_bias == 0.125
        images = make_images(seed=8)
        np.testing.assert_array_equal(
            entry.engine.predict_logits(images),
            PackedBNN(model).predict_logits(images),
        )

    def test_meta_scalars_round_trip_types(self, tmp_path):
        path = save_model(make_model(), tmp_path / "m", meta={
            "image_size": 16, "scaling": "channelwise", "decision_bias": -0.5,
        })
        meta = load_meta(path)
        assert meta["image_size"] == 16 and isinstance(meta["image_size"], int)
        assert meta["scaling"] == "channelwise"
        assert meta["decision_bias"] == -0.5

    def test_model_from_meta_requires_image_size(self):
        with pytest.raises(KeyError, match="image_size"):
            model_from_meta({"base_width": 8})

    def test_legacy_checkpoint_needs_explicit_model(self, tmp_path):
        model = make_model(seed=3)
        path = save_model(model, tmp_path / "legacy.npz")  # no meta
        registry = ModelRegistry()
        with pytest.raises(KeyError):
            registry.load_checkpoint("m", path)
        entry = registry.load_checkpoint(
            "m", path, model=make_model(seed=4), image_size=16
        )
        assert entry.backend == "packed" and entry.image_size == 16


class TestExplicitBackend:
    def test_explicit_float_is_compiled_not_live(self):
        model = make_model()
        model.forward(make_images(seed=4), training=True)
        engine, backend = compile_engine(model, backend="float")
        assert backend == "float" and isinstance(engine, FloatEngine)
        assert not engine.is_live  # compiled program, not a model view
        images = make_images(seed=5)
        np.testing.assert_array_equal(
            engine.predict_logits(images),
            PackedBNN(model).predict_logits(images),
        )

    def test_unknown_backend_raises_listing_available(self):
        with pytest.raises(ValueError, match="packed"):
            compile_engine(make_model(), backend="turbo")

    def test_explicit_packed_is_strict_on_unloweredable(self):
        model = Sequential(Unsupported(), Dense(4, 2,
                                                rng=np.random.default_rng(0)))
        with pytest.raises(TypeError):
            compile_engine(model, backend="packed")

    def test_register_threads_backend_through(self):
        registry = ModelRegistry()
        entry = registry.register(
            "m", make_model(), image_size=16, backend="float"
        )
        assert entry.backend == "float"
        assert isinstance(entry.engine, FloatEngine)
        assert entry.fallback_reason is None


class TestFallbackReason:
    def test_reason_recorded_on_silent_fallback(self):
        model = Sequential(Unsupported(), Dense(4, 2,
                                                rng=np.random.default_rng(0)))
        registry = ModelRegistry()
        entry = registry.register("m", model, image_size=16)
        assert entry.backend == "float"
        assert entry.fallback_reason is not None
        assert "Unsupported" in entry.fallback_reason

    def test_no_reason_when_float_requested(self):
        registry = ModelRegistry()
        entry = registry.register(
            "m", make_model(), image_size=16, prefer_packed=False
        )
        assert entry.backend == "float"
        assert entry.fallback_reason is None

    def test_no_reason_on_successful_packed(self):
        registry = ModelRegistry()
        entry = registry.register("m", make_model(), image_size=16)
        assert entry.backend == "packed"
        assert entry.fallback_reason is None


class TestBackendMeta:
    def _save(self, tmp_path, backend="packed"):
        model = make_model(seed=2)
        model.forward(make_images(seed=7), training=True)
        return save_model(model, tmp_path / "ck", meta={
            "image_size": 16, "base_width": 4, "scaling": "xnor",
            "stem_stride": 1, "backend": backend,
        })

    def test_matching_backend_loads_silently(self, tmp_path):
        path = self._save(tmp_path, backend="packed")
        registry = ModelRegistry()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            entry = registry.load_checkpoint("m", path)
        assert entry.backend == "packed"

    def test_mismatched_backend_warns(self, tmp_path):
        path = self._save(tmp_path, backend="packed")
        registry = ModelRegistry()
        with pytest.warns(UserWarning, match="records backend 'packed'"):
            entry = registry.load_checkpoint("m", path, prefer_packed=False)
        assert entry.backend == "float"

    def test_explicit_backend_mismatch_warns(self, tmp_path):
        path = self._save(tmp_path, backend="float")
        registry = ModelRegistry()
        with pytest.warns(UserWarning, match="'packed' was requested"):
            registry.load_checkpoint("m", path, backend="packed")

    def test_legacy_checkpoint_without_record_is_silent(self, tmp_path):
        model = make_model(seed=3)
        path = save_model(model, tmp_path / "ck", meta={
            "image_size": 16, "base_width": 4,
        })
        registry = ModelRegistry()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            entry = registry.load_checkpoint("m", path, prefer_packed=False)
        assert entry.backend == "float"
