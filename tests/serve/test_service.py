"""Tests for the HotspotService front door: classify, scan, stats."""

import threading

import numpy as np
import pytest

from repro.binary.inference import PackedBNN
from repro.features.downsample import to_network_input
from repro.litho.geometry import Clip, Rect
from repro.models.bnn_resnet import build_bnn_resnet
from repro.serve import (
    ClipRequest,
    HealthState,
    HotspotService,
    ModelRegistry,
    ScanReport,
    ScanRequest,
    ServiceOverloaded,
    extract_window,
    window_origins,
)


@pytest.fixture(scope="module")
def model():
    return build_bnn_resnet((4, 8), scaling="xnor", seed=0)


@pytest.fixture
def service(model):
    svc = HotspotService.from_model(model, image_size=16, max_wait_ms=1.0)
    yield svc
    svc.close()


def make_images(n=8, size=16, seed=0):
    rng = np.random.default_rng(seed)
    return (rng.random((n, size, size)) < 0.3).astype(float)


def make_layout(size=2048, seed=1, n=20):
    rng = np.random.default_rng(seed)
    layout = Clip(size)
    for _ in range(n):
        x0 = int(rng.integers(0, size - 200))
        y0 = int(rng.integers(0, size - 200))
        layout.add(Rect(x0, y0, x0 + int(rng.integers(60, 180)),
                        y0 + int(rng.integers(60, 180))))
    return layout


class TestWindowGeometry:
    def test_origins_cover_layout_with_edge_snap(self):
        origins = window_origins(size=100, window=40, stride=30)
        xs = sorted({x for x, _ in origins})
        assert xs == [0, 30, 60]  # 60 = 100 - 40 snaps the edge
        assert len(origins) == 9

    def test_tail_window_not_duplicated_when_snap_coincides(self):
        origins = window_origins(size=100, window=40, stride=20)
        assert sorted({x for x, _ in origins}) == [0, 20, 40, 60]

    def test_window_equals_size_single_origin(self):
        assert window_origins(size=64, window=64, stride=16) == [(0, 0)]

    def test_stride_larger_than_window_still_covers_edges(self):
        origins = window_origins(size=100, window=20, stride=70)
        assert sorted({x for x, _ in origins}) == [0, 70, 80]

    def test_window_larger_than_layout_raises(self):
        with pytest.raises(ValueError):
            window_origins(size=100, window=128, stride=32)
        with pytest.raises(ValueError):
            window_origins(size=100, window=0, stride=32)
        with pytest.raises(ValueError):
            window_origins(size=100, window=50, stride=0)

    def test_extract_window_tail_clips_rects(self):
        layout = Clip(100, [Rect(55, 55, 100, 100)])
        tail = extract_window(layout, 60, 60, 40)
        assert [(r.x0, r.y0, r.x1, r.y1) for r in tail.rects] == [
            (0, 0, 40, 40)
        ]

    def test_origins_exact_tiling_no_duplicate(self):
        origins = window_origins(size=64, window=16, stride=16)
        assert len(origins) == 16
        assert len(set(origins)) == 16

    def test_extract_window_matches_local_geometry(self):
        layout = Clip(100, [Rect(10, 10, 30, 30), Rect(60, 60, 90, 90)])
        window = extract_window(layout, 50, 50, 50)
        assert [(r.x0, r.y0, r.x1, r.y1) for r in window.rects] == [
            (10, 10, 40, 40)
        ]
        empty = extract_window(layout, 30, 0, 20)
        assert len(empty) == 0


class TestClassify:
    def test_image_and_request_agree(self, service):
        image = make_images(1)[0]
        direct = service.classify(image)
        wrapped = service.classify(ClipRequest(image=image, request_id="r1"))
        assert wrapped.request_id == "r1"
        assert wrapped.score == direct.score
        assert direct.backend == "packed" and direct.model == "default"

    def test_matches_engine_exactly(self, service, model):
        images = make_images(6, seed=2)
        engine = PackedBNN(model)
        logits = engine.predict_logits(to_network_input(images))
        expected = logits[:, 1] - logits[:, 0]
        predictions = service.classify_many(list(images))
        np.testing.assert_array_equal(
            np.array([p.score for p in predictions]), expected
        )
        for p, score in zip(predictions, expected):
            assert p.label == int(score > 0)

    def test_geometry_request_uses_cache(self, service):
        clip = make_layout(size=512, seed=3, n=5)
        first = service.classify(clip)
        second = service.classify(ClipRequest(clip=clip))
        assert second.score == first.score
        assert service.cache.hits == 1

    def test_downsamples_larger_rasters(self, service):
        image = make_images(1, size=32, seed=4)[0]
        prediction = service.classify(image)
        assert prediction.label in (0, 1)

    def test_decision_bias_shifts_labels(self, model):
        images = make_images(10, seed=5)
        with HotspotService.from_model(model, 16) as neutral:
            scores = [p.score for p in neutral.classify_many(list(images))]
        bias = float(np.median(scores))
        with HotspotService.from_model(model, 16,
                                       decision_bias=bias) as biased:
            predictions = biased.classify_many(list(images))
        for p, score in zip(predictions, scores):
            assert p.score == score
            assert p.label == int(score > bias)

    def test_model_selection_errors(self, model):
        registry = ModelRegistry()
        registry.register("a", model, image_size=16)
        registry.register("b", model, image_size=16)
        with HotspotService(registry) as service:  # no default set
            with pytest.raises(ValueError, match="no model selected"):
                service.classify(make_images(1)[0])
            assert service.classify(make_images(1)[0], model="a").model == "a"

    def test_bad_request_shape(self, service):
        with pytest.raises(ValueError):
            ClipRequest(image=np.ones((4, 8)))
        with pytest.raises(ValueError):
            ClipRequest()  # neither image nor clip

    def test_concurrent_classify_deterministic(self, service, model):
        """Same request set -> same predictions under thread contention."""
        images = make_images(32, seed=6)
        engine = PackedBNN(model)
        logits = engine.predict_logits(to_network_input(images))
        expected = logits[:, 1] - logits[:, 0]
        results = [None] * len(images)

        def worker(indices):
            for i in indices:
                results[i] = service.classify(images[i]).score

        threads = [threading.Thread(target=worker,
                                    args=(range(k, len(images), 4),))
                   for k in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        np.testing.assert_array_equal(np.array(results), expected)


class TestScan:
    def test_report_shape_and_counts(self, service):
        layout = make_layout()
        report = service.scan(ScanRequest(layout, window=512, stride=256,
                                          request_id="scan-1"))
        origins = window_origins(2048, 512, 256)
        assert report.request_id == "scan-1"
        assert report.windows_scanned == len(origins)
        assert 0.0 <= report.hotspot_rate <= 1.0
        for hit in report.hits:
            assert hit.x1 - hit.x0 == 512 and hit.y1 - hit.y0 == 512

    def test_scan_matches_manual_classification(self, service, model):
        layout = make_layout(seed=8)
        request = ScanRequest(layout, window=512, stride=512)
        report = service.scan(request)
        engine = PackedBNN(model)
        expected_hits = []
        for x, y in window_origins(2048, 512, 512):
            window = extract_window(layout, x, y, 512)
            from repro.litho.raster import rasterize

            image = rasterize(window, 16, "binary")
            logits = engine.predict_logits(to_network_input(image[None]))
            score = float(logits[0, 1] - logits[0, 0])
            if score > 0:
                expected_hits.append((x, y, score))
        assert [(h.x0, h.y0, h.score) for h in report.hits] == expected_hits

    def test_worker_count_invariant(self, model):
        layout = make_layout(seed=9)
        request = ScanRequest(layout, window=512, stride=128)
        reports = []
        for workers in (1, 3, 7):
            with HotspotService.from_model(model, 16,
                                           workers=workers) as service:
                reports.append(service.scan(request))
        assert reports[0].hits == reports[1].hits == reports[2].hits
        assert (reports[0].windows_scanned == reports[1].windows_scanned
                == reports[2].windows_scanned)

    def test_scan_validation(self):
        layout = make_layout()
        with pytest.raises(ValueError):
            ScanRequest(layout, window=4096, stride=128)  # window > layout
        with pytest.raises(ValueError):
            ScanRequest(layout, window=512, stride=0)


class TestPlaneScan:
    """The plane-compiled scan path is a silent drop-in: reports must be
    bit-identical to the per-window path for any worker count."""

    def _per_window_report(self, model, request, workers=1):
        """Reference report with the plane path forced off."""
        with HotspotService.from_model(model, 16, workers=workers) as svc:
            svc._plane_scale = lambda *args: None
            report = svc.scan(request)
            assert svc.metrics.plane_scan_requests_total == 0
        return report

    @pytest.mark.parametrize("stride", [32, 64, 128])
    @pytest.mark.parametrize("workers", [1, 4])
    def test_bit_identical_reports(self, model, stride, workers):
        layout = make_layout(size=512, seed=5)
        request = ScanRequest(layout, window=128, stride=stride)
        expected = self._per_window_report(model, request, workers=workers)
        with HotspotService.from_model(model, 16, workers=workers) as svc:
            report = svc.scan(request)
            assert svc.metrics.plane_scan_requests_total == 1
        assert report.hits == expected.hits  # exact float equality
        assert report.windows_scanned == expected.windows_scanned

    def test_misaligned_geometry_falls_back(self, model):
        # window 200 is not a whole number of 16-px cells (200 % 16 != 0)
        layout = make_layout(size=500, seed=6)
        request = ScanRequest(layout, window=200, stride=100)
        with HotspotService.from_model(model, 16) as svc:
            svc.scan(request)
            assert svc.metrics.plane_scan_requests_total == 0
            assert svc.metrics.scan_requests_total == 1
            assert len(svc.plane_cache) == 0

    def test_plane_cache_reused_across_scans(self, model):
        layout = make_layout(size=512, seed=7)
        request = ScanRequest(layout, window=128, stride=64)
        with HotspotService.from_model(model, 16) as svc:
            first = svc.scan(request)
            second = svc.scan(request)
            stats = svc.stats()
        assert first.hits == second.hits
        assert stats["plane_scan_requests_total"] == 2
        assert stats["plane_cache"]["misses"] == 1
        assert stats["plane_cache"]["hits"] == 1


class TestStatsAndLifecycle:
    def test_stats_snapshot_fields(self, service):
        service.classify_many(list(make_images(5, seed=10)))
        service.scan(ScanRequest(make_layout(), window=512, stride=512))
        stats = service.stats()
        assert stats["requests_total"] == 5
        assert stats["scan_requests_total"] == 1
        assert stats["windows_scanned_total"] == 16
        assert stats["batches_total"] >= 1
        assert stats["request_latency"]["count"] == 5
        assert 0.0 <= stats["cache"]["hit_rate"] <= 1.0
        assert stats["models"]["default"]["backend"] == "packed"

    def test_close_idempotent_and_rejects_new_work(self, model):
        service = HotspotService.from_model(model, 16)
        service.classify(make_images(1)[0])
        service.close()
        service.close()
        with pytest.raises(RuntimeError):
            service.classify(make_images(1)[0])

    def test_float_backend_served_on_request(self, model):
        with HotspotService.from_model(model, 16,
                                       prefer_packed=False) as service:
            prediction = service.classify(make_images(1)[0])
        assert prediction.backend == "float"

    def test_stats_exposes_robustness_counters(self, service):
        service.classify(make_images(1)[0])
        stats = service.stats()
        for key in ("shed_total", "timeouts_total", "quarantined_total",
                    "batch_splits_total", "degraded_scans_total",
                    "windows_failed_total", "shard_retries_total"):
            assert stats[key] == 0
        assert stats["health"] == "ready"

    def test_invalid_robustness_knobs_rejected(self, model):
        with pytest.raises(ValueError):
            HotspotService.from_model(model, 16, overflow="drop")
        with pytest.raises(ValueError):
            HotspotService.from_model(model, 16, queue_depth=0)
        with pytest.raises(ValueError):
            HotspotService.from_model(model, 16, shard_retries=-1)

    def test_shed_policy_reaches_service_front_door(self, model):
        """queue_depth/overflow plumb through to every batcher: with a
        one-slot shed queue, a flood of submits must shed rather than
        block, and the shed counter must tick."""
        with HotspotService.from_model(model, 16, queue_depth=1,
                                       overflow="shed",
                                       max_wait_ms=50.0) as svc:
            batcher = svc._batcher(svc.registry.get("default"))
            shed = 0
            for image in make_images(32, seed=11):
                try:
                    batcher.submit(np.ascontiguousarray(image[None, None]))
                except ServiceOverloaded:
                    shed += 1
            assert svc.metrics.shed_total == shed


class TestHealth:
    def test_ready_then_degraded_then_draining(self, service):
        assert service.health().state is HealthState.READY
        assert service.health().ok
        service.metrics.record_shed()
        report = service.health()
        assert report.state is HealthState.DEGRADED
        assert report.ok  # degraded still serves
        assert any("shed" in reason for reason in report.reasons)
        service.metrics.reset()
        assert service.health().state is HealthState.READY
        service.close()
        final = service.health()
        assert final.state is HealthState.DRAINING
        assert not final.ok

    def test_each_fault_counter_degrades_with_reason(self, service):
        counters = {
            "record_shed": "shed",
            "record_timeout": "timeout",
            "record_quarantine": "quarantined",
        }
        for method, needle in counters.items():
            service.metrics.reset()
            getattr(service.metrics, method)()
            report = service.health()
            assert report.state is HealthState.DEGRADED
            assert any(needle in reason for reason in report.reasons), (
                method, report.reasons
            )
        service.metrics.reset()


class TestScanReportContract:
    def _report(self, **overrides):
        fields = dict(request_id="r", model="m", windows_scanned=10,
                      hits=(), latency_ms=1.0)
        fields.update(overrides)
        return ScanReport(**fields)

    def test_degraded_flag_must_match_failed_ranges(self):
        with pytest.raises(ValueError):
            self._report(degraded=True, failed_ranges=())
        with pytest.raises(ValueError):
            self._report(degraded=False, failed_ranges=((0, 4),))

    def test_windows_failed_sums_ranges(self):
        report = self._report(degraded=True, failed_ranges=((0, 4), (8, 10)))
        assert report.windows_failed == 6

    def test_hotspot_rate_counts_only_scored_windows(self):
        report = self._report(hits=(1, 2), degraded=True,
                              failed_ranges=((0, 5),))
        assert report.hotspot_rate == 2 / 5  # 10 windows, 5 scored
        empty = self._report(windows_scanned=4, degraded=True,
                             failed_ranges=((0, 4),))
        assert empty.hotspot_rate == 0.0  # nothing scored: no divide


class TestBackendObservability:
    def test_per_op_ms_in_stats(self, service):
        service.classify_many(list(make_images(4, seed=20)))
        per_op = service.stats()["per_op_ms"]
        assert "default" in per_op
        rows = per_op["default"]
        assert rows and all(row["calls"] >= 1 for row in rows)
        assert any(".conv" in row["op"] or row["op"].endswith("conv")
                   for row in rows)
        assert all(row["total_ms"] >= 0.0 for row in rows)

    def test_per_op_tables_reset_with_metrics(self, service):
        service.classify(make_images(1, seed=21)[0])
        service.metrics.reset()
        rows = service.stats()["per_op_ms"]["default"]
        assert rows and all(row["calls"] == 0 for row in rows)

    def test_no_fallback_reason_on_packed_default(self, service):
        service.classify(make_images(1, seed=22)[0])
        assert service.stats()["models"]["default"]["fallback_reason"] is None

    def test_explicit_backend_threads_to_service(self, model):
        with HotspotService.from_model(model, 16,
                                       backend="float") as service:
            prediction = service.classify(make_images(1, seed=23)[0])
            assert prediction.backend == "float"
            # an explicit request is not a fallback: health stays READY
            assert service.health().state is HealthState.READY
            assert (service.stats()["models"]["default"]["fallback_reason"]
                    is None)

    def test_silent_fallback_degrades_health_with_reason(self):
        from repro.nn import Dense, GlobalAvgPool2D, Module, Sequential

        class Unsupported(Module):
            def forward(self, x, training=False):
                return np.tanh(x)

        rng = np.random.default_rng(0)
        fallback_model = Sequential(
            Unsupported(), GlobalAvgPool2D(), Dense(1, 2, rng=rng)
        )
        with HotspotService.from_model(fallback_model, 16) as service:
            prediction = service.classify(make_images(1, seed=24)[0])
            assert prediction.backend == "float"
            entry_stats = service.stats()["models"]["default"]
            assert "Unsupported" in entry_stats["fallback_reason"]
            report = service.health()
            assert report.state is HealthState.DEGRADED
            assert report.ok  # degraded still serves
            assert any("default" in reason and "Unsupported" in reason
                       for reason in report.reasons)
