"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table3_args(self):
        args = build_parser().parse_args(
            ["table3", "--scale", "0.01", "--epochs", "3"]
        )
        assert args.command == "table3"
        assert args.scale == 0.01
        assert args.epochs == 3

    def test_train_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.scaling == "xnor"
        assert args.epsilon == 0.2

    def test_predict_args(self):
        args = build_parser().parse_args(["predict", "ck.npz", "--limit", "8"])
        assert args.command == "predict"
        assert args.checkpoint == "ck.npz"
        assert args.limit == 8
        assert args.packed  # --float flips this off

    def test_serve_bench_defaults(self):
        args = build_parser().parse_args(["serve-bench"])
        assert args.command == "serve-bench"
        assert args.requests == 128
        assert args.max_batch == 64
        assert args.max_wait_ms == 2.0

    def test_scan_defaults(self):
        args = build_parser().parse_args(["scan", "synth:8192", "ck.npz"])
        assert args.command == "scan"
        assert args.layout == "synth:8192"
        assert args.checkpoint == "ck.npz"
        assert args.window is None and args.stride is None
        assert args.tile_budget_mib == 64.0
        assert args.out is None
        assert args.journal is None
        assert args.resume is False
        assert args.max_retries is None

    def test_scan_durable_flags(self):
        args = build_parser().parse_args([
            "scan", "synth:8192", "ck.npz", "--journal", "scan.journal",
            "--resume", "--max-retries", "5",
        ])
        assert args.journal == "scan.journal"
        assert args.resume is True
        assert args.max_retries == 5


class TestCommands:
    def test_litho_clean_run(self, capsys):
        assert main(["litho", "--pattern", "grating", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "pattern=grating" in out
        assert "worst-corner" in out

    def test_litho_with_opc(self, capsys):
        assert main(["litho", "--pattern", "via_array", "--seed", "2",
                     "--opc"]) == 0
        assert "after rule-based OPC" in capsys.readouterr().out

    def test_litho_unknown_pattern(self, capsys):
        assert main(["litho", "--pattern", "nonsense"]) == 2

    def test_table2(self, capsys):
        code = main(["table2", "--scale", "0.001", "--image-size", "16",
                     "--seed", "7"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "ICCAD (paper)" in out

    def test_train_and_save(self, capsys, tmp_path):
        path = tmp_path / "model.npz"
        code = main([
            "train", "--scale", "0.001", "--image-size", "16", "--seed", "7",
            "--epochs", "1", "--finetune-epochs", "0", "--save", str(path),
        ])
        assert code == 0
        assert path.exists()
        out = capsys.readouterr().out
        assert "BNN detector" in out

    def test_train_save_then_predict(self, capsys, tmp_path):
        """train --save writes a self-describing checkpoint predict serves."""
        path = tmp_path / "ck"  # suffix-less on purpose
        assert main([
            "train", "--scale", "0.001", "--image-size", "16", "--seed", "7",
            "--epochs", "1", "--finetune-epochs", "0", "--save", str(path),
        ]) == 0
        assert (tmp_path / "ck.npz").exists()
        capsys.readouterr()

        code = main([
            "predict", str(path), "--scale", "0.001", "--seed", "7",
            "--limit", "12",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Backend" in out and "packed" in out
        assert "Accu (%)" in out

    def test_predict_float_backend(self, capsys, tmp_path):
        path = tmp_path / "ck.npz"
        main([
            "train", "--scale", "0.001", "--image-size", "16", "--seed", "7",
            "--epochs", "1", "--finetune-epochs", "0", "--save", str(path),
        ])
        capsys.readouterr()
        assert main(["predict", str(path), "--scale", "0.001", "--seed", "7",
                     "--limit", "6", "--float"]) == 0
        assert "float" in capsys.readouterr().out

    def test_predict_missing_checkpoint(self, capsys, tmp_path):
        assert main(["predict", str(tmp_path / "absent.npz"),
                     "--scale", "0.001"]) == 2

    def test_serve_bench_quick(self, capsys):
        code = main([
            "serve-bench", "--scale", "0.001", "--image-size", "16",
            "--seed", "7", "--epochs", "1", "--requests", "16",
            "--max-batch", "8",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "batched-packed" in out
        assert "predictions identical: True" in out

    def test_roc(self, capsys):
        code = main(["roc", "--scale", "0.002", "--image-size", "16",
                     "--seed", "7", "--epochs", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "AUC" in out
        assert "recall at FA rate" in out

    def test_table3_small(self, capsys):
        code = main(["table3", "--scale", "0.002", "--image-size", "16",
                     "--seed", "7", "--epochs", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Ours (BNN)" in out
        assert "SPIE'15" in out


class TestScanCommand:
    @pytest.fixture(scope="class")
    def checkpoint(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("scan") / "ck.npz"
        assert main([
            "train", "--scale", "0.001", "--image-size", "16", "--seed", "7",
            "--epochs", "1", "--finetune-epochs", "0", "--save", str(path),
        ]) == 0
        return path

    def test_missing_layout_file(self, capsys, tmp_path):
        code = main(["scan", str(tmp_path / "absent.txt"), "ck.npz"])
        assert code == 2
        assert "not found" in capsys.readouterr().out

    def test_bad_synth_spec(self, capsys):
        assert main(["scan", "synth:not-a-size", "ck.npz"]) == 2
        assert "bad synth spec" in capsys.readouterr().out

    def test_missing_checkpoint(self, capsys, tmp_path):
        code = main(["scan", "synth:2048", str(tmp_path / "absent.npz")])
        assert code == 2
        assert "checkpoint not found" in capsys.readouterr().out

    def test_misaligned_geometry(self, capsys, checkpoint):
        # window 100 is not a multiple of the checkpoint's 16px input
        code = main(["scan", "synth:2048:3", str(checkpoint),
                     "--window", "100"])
        assert code == 2
        assert "cannot scan" in capsys.readouterr().out

    def test_clean_run(self, capsys, checkpoint):
        code = main(["scan", "synth:2048:3", str(checkpoint)])
        assert code == 0
        out = capsys.readouterr().out
        assert "repro scan" in out and "2048nm layout" in out
        assert "Windows" in out and "Peak tile (MiB)" in out
        assert "DEGRADED" not in out

    def test_out_npz_roundtrip(self, capsys, checkpoint, tmp_path):
        from repro.chip import HotspotHeatmap

        out = tmp_path / "heatmap.npz"
        assert main(["scan", "synth:2048:3", str(checkpoint),
                     "--out", str(out)]) == 0
        heatmap = HotspotHeatmap.load_npz(out)
        assert heatmap.scores.shape[0] == len(heatmap.steps)
        assert not np.isnan(heatmap.scores).any()

    def test_out_json_summary(self, capsys, checkpoint, tmp_path):
        import json

        out = tmp_path / "scan.json"
        assert main(["scan", "synth:2048:3", str(checkpoint),
                     "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["summary"]["windows"] > 0
        assert payload["degraded"] is False
        assert len(payload["hits"]) == payload["summary"]["hotspots"]

    def test_resume_without_journal(self, capsys):
        assert main(["scan", "synth:2048:3", "ck.npz", "--resume"]) == 2
        assert "--journal" in capsys.readouterr().out

    def test_journal_clean_run(self, capsys, checkpoint, tmp_path):
        journal = tmp_path / "scan.journal"
        code = main(["scan", "synth:2048:3", str(checkpoint),
                     "--journal", str(journal)])
        assert code == 0
        assert journal.exists()
        out = capsys.readouterr().out
        assert "journal:" in out and "replayed 0 tiles" in out

    def test_journal_resume_replays(self, capsys, checkpoint, tmp_path):
        journal = tmp_path / "scan.journal"
        assert main(["scan", "synth:2048:3", str(checkpoint),
                     "--journal", str(journal)]) == 0
        capsys.readouterr()
        code = main(["scan", "synth:2048:3", str(checkpoint),
                     "--journal", str(journal), "--resume"])
        assert code == 0
        assert "resumed" in capsys.readouterr().out

    def test_journal_exists_without_resume(self, capsys, checkpoint,
                                           tmp_path):
        journal = tmp_path / "scan.journal"
        assert main(["scan", "synth:2048:3", str(checkpoint),
                     "--journal", str(journal)]) == 0
        capsys.readouterr()
        # without --resume an existing journal is refused, not clobbered
        code = main(["scan", "synth:2048:3", str(checkpoint),
                     "--journal", str(journal)])
        assert code == 2
        assert "cannot use journal" in capsys.readouterr().out

    def test_journal_geometry_mismatch(self, capsys, checkpoint, tmp_path):
        journal = tmp_path / "scan.journal"
        assert main(["scan", "synth:2048:3", str(checkpoint),
                     "--journal", str(journal)]) == 0
        capsys.readouterr()
        code = main(["scan", "synth:2048:3", str(checkpoint),
                     "--journal", str(journal), "--resume",
                     "--stride", "128"])
        assert code == 2
        assert "cannot use journal" in capsys.readouterr().out

    def test_degraded_scan_exits_4(self, capsys, checkpoint, tmp_path,
                                    monkeypatch):
        import dataclasses

        from repro.serve import HotspotService

        out = tmp_path / "scan.json"
        real = HotspotService.scan_chip

        def degrade(self, request, **kwargs):
            report = real(self, request, **kwargs)
            return dataclasses.replace(
                report, degraded=True, failed_tiles=(0,)
            )

        monkeypatch.setattr(HotspotService, "scan_chip", degrade)
        code = main(["scan", "synth:2048:3", str(checkpoint),
                     "--out", str(out)])
        assert code == 4
        # degraded-but-usable: the results were still written
        assert out.exists()
        assert "DEGRADED" in capsys.readouterr().out
