"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table3_args(self):
        args = build_parser().parse_args(
            ["table3", "--scale", "0.01", "--epochs", "3"]
        )
        assert args.command == "table3"
        assert args.scale == 0.01
        assert args.epochs == 3

    def test_train_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.scaling == "xnor"
        assert args.epsilon == 0.2

    def test_predict_args(self):
        args = build_parser().parse_args(["predict", "ck.npz", "--limit", "8"])
        assert args.command == "predict"
        assert args.checkpoint == "ck.npz"
        assert args.limit == 8
        assert args.packed  # --float flips this off

    def test_serve_bench_defaults(self):
        args = build_parser().parse_args(["serve-bench"])
        assert args.command == "serve-bench"
        assert args.requests == 128
        assert args.max_batch == 64
        assert args.max_wait_ms == 2.0


class TestCommands:
    def test_litho_clean_run(self, capsys):
        assert main(["litho", "--pattern", "grating", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "pattern=grating" in out
        assert "worst-corner" in out

    def test_litho_with_opc(self, capsys):
        assert main(["litho", "--pattern", "via_array", "--seed", "2",
                     "--opc"]) == 0
        assert "after rule-based OPC" in capsys.readouterr().out

    def test_litho_unknown_pattern(self, capsys):
        assert main(["litho", "--pattern", "nonsense"]) == 2

    def test_table2(self, capsys):
        code = main(["table2", "--scale", "0.001", "--image-size", "16",
                     "--seed", "7"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "ICCAD (paper)" in out

    def test_train_and_save(self, capsys, tmp_path):
        path = tmp_path / "model.npz"
        code = main([
            "train", "--scale", "0.001", "--image-size", "16", "--seed", "7",
            "--epochs", "1", "--finetune-epochs", "0", "--save", str(path),
        ])
        assert code == 0
        assert path.exists()
        out = capsys.readouterr().out
        assert "BNN detector" in out

    def test_train_save_then_predict(self, capsys, tmp_path):
        """train --save writes a self-describing checkpoint predict serves."""
        path = tmp_path / "ck"  # suffix-less on purpose
        assert main([
            "train", "--scale", "0.001", "--image-size", "16", "--seed", "7",
            "--epochs", "1", "--finetune-epochs", "0", "--save", str(path),
        ]) == 0
        assert (tmp_path / "ck.npz").exists()
        capsys.readouterr()

        code = main([
            "predict", str(path), "--scale", "0.001", "--seed", "7",
            "--limit", "12",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Backend" in out and "packed" in out
        assert "Accu (%)" in out

    def test_predict_float_backend(self, capsys, tmp_path):
        path = tmp_path / "ck.npz"
        main([
            "train", "--scale", "0.001", "--image-size", "16", "--seed", "7",
            "--epochs", "1", "--finetune-epochs", "0", "--save", str(path),
        ])
        capsys.readouterr()
        assert main(["predict", str(path), "--scale", "0.001", "--seed", "7",
                     "--limit", "6", "--float"]) == 0
        assert "float" in capsys.readouterr().out

    def test_predict_missing_checkpoint(self, capsys, tmp_path):
        assert main(["predict", str(tmp_path / "absent.npz"),
                     "--scale", "0.001"]) == 2

    def test_serve_bench_quick(self, capsys):
        code = main([
            "serve-bench", "--scale", "0.001", "--image-size", "16",
            "--seed", "7", "--epochs", "1", "--requests", "16",
            "--max-batch", "8",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "batched-packed" in out
        assert "predictions identical: True" in out

    def test_roc(self, capsys):
        code = main(["roc", "--scale", "0.002", "--image-size", "16",
                     "--seed", "7", "--epochs", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "AUC" in out
        assert "recall at FA rate" in out

    def test_table3_small(self, capsys):
        code = main(["table3", "--scale", "0.002", "--image-size", "16",
                     "--seed", "7", "--epochs", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Ours (BNN)" in out
        assert "SPIE'15" in out
