"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table3_args(self):
        args = build_parser().parse_args(
            ["table3", "--scale", "0.01", "--epochs", "3"]
        )
        assert args.command == "table3"
        assert args.scale == 0.01
        assert args.epochs == 3

    def test_train_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.scaling == "xnor"
        assert args.epsilon == 0.2


class TestCommands:
    def test_litho_clean_run(self, capsys):
        assert main(["litho", "--pattern", "grating", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "pattern=grating" in out
        assert "worst-corner" in out

    def test_litho_with_opc(self, capsys):
        assert main(["litho", "--pattern", "via_array", "--seed", "2",
                     "--opc"]) == 0
        assert "after rule-based OPC" in capsys.readouterr().out

    def test_litho_unknown_pattern(self, capsys):
        assert main(["litho", "--pattern", "nonsense"]) == 2

    def test_table2(self, capsys):
        code = main(["table2", "--scale", "0.001", "--image-size", "16",
                     "--seed", "7"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "ICCAD (paper)" in out

    def test_train_and_save(self, capsys, tmp_path):
        path = tmp_path / "model.npz"
        code = main([
            "train", "--scale", "0.001", "--image-size", "16", "--seed", "7",
            "--epochs", "1", "--finetune-epochs", "0", "--save", str(path),
        ])
        assert code == 0
        assert path.exists()
        out = capsys.readouterr().out
        assert "BNN detector" in out

    def test_roc(self, capsys):
        code = main(["roc", "--scale", "0.002", "--image-size", "16",
                     "--seed", "7", "--epochs", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "AUC" in out
        assert "recall at FA rate" in out

    def test_table3_small(self, capsys):
        code = main(["table3", "--scale", "0.002", "--image-size", "16",
                     "--seed", "7", "--epochs", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Ours (BNN)" in out
        assert "SPIE'15" in out
