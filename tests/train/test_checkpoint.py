"""Tests for atomic run-state checkpoints and the retention policy."""

import numpy as np
import pytest

from repro.nn.serialization import CheckpointError
from repro.train import (
    CheckpointManager,
    load_run_state,
    save_run_state,
)


def sample_state(step=0, val_loss=float("nan")):
    return {
        "model.w": np.arange(6, dtype=np.float64).reshape(2, 3),
        "optim.t": np.int64(step),
        "run.val_loss": np.float64(val_loss),
        "run.schedule": np.asarray('[["main", 2]]'),
    }


class TestSaveLoad:
    def test_roundtrip_preserves_arrays(self, tmp_path):
        path = tmp_path / "state-000000001.npz"
        save_run_state(path, sample_state(step=7))
        loaded = load_run_state(path)
        np.testing.assert_array_equal(
            loaded["model.w"], np.arange(6).reshape(2, 3)
        )
        assert int(loaded["optim.t"]) == 7
        assert str(loaded["run.schedule"].item()) == '[["main", 2]]'

    def test_no_temp_files_left_behind(self, tmp_path):
        save_run_state(tmp_path / "state.npz", sample_state())
        leftovers = [p.name for p in tmp_path.iterdir()
                     if "tmp" in p.name]
        assert leftovers == []

    def test_reserved_checksum_key_rejected(self, tmp_path):
        state = sample_state()
        state["__run__.content_sha256"] = np.asarray("spoofed")
        with pytest.raises(ValueError, match="reserved"):
            save_run_state(tmp_path / "state.npz", state)
        assert list(tmp_path.iterdir()) == []  # nothing half-written

    def test_truncated_file_refused(self, tmp_path):
        path = save_run_state(tmp_path / "state.npz", sample_state())
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(CheckpointError):
            load_run_state(path)

    def test_bit_flip_refused(self, tmp_path):
        path = save_run_state(tmp_path / "state.npz", sample_state())
        data = bytearray(path.read_bytes())
        # flip a bit inside the payload, past the zip local header
        data[len(data) // 2] ^= 0x10
        path.write_bytes(bytes(data))
        with pytest.raises(CheckpointError):
            load_run_state(path)

    def test_missing_checksum_refused(self, tmp_path):
        path = tmp_path / "state.npz"
        np.savez(path, **sample_state())  # bypasses save_run_state
        with pytest.raises(CheckpointError, match="no content checksum"):
            load_run_state(path)

    def test_missing_file_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_run_state(tmp_path / "absent.npz")

    def test_overwrite_is_atomic_replacement(self, tmp_path):
        path = tmp_path / "state.npz"
        save_run_state(path, sample_state(step=1))
        save_run_state(path, sample_state(step=2))
        assert int(load_run_state(path)["optim.t"]) == 2


class TestCheckpointManager:
    def test_empty_directory(self, tmp_path):
        manager = CheckpointManager(tmp_path / "does-not-exist-yet")
        assert manager.checkpoints() == []
        assert manager.latest() is None
        assert manager.best() is None
        assert manager.load_latest() is None

    def test_invalid_keep_raises(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointManager(tmp_path, keep=0)

    def test_latest_is_highest_step(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=5)
        for step in (3, 11, 7):
            manager.save(step, sample_state(step=step))
        assert manager.latest().step == 11
        assert [c.step for c in manager.checkpoints()] == [3, 7, 11]

    def test_retention_keeps_last_n_plus_best(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=2)
        losses = {1: 0.9, 2: 0.1, 3: 0.5, 4: 0.4, 5: 0.3}
        for step, loss in losses.items():
            manager.save(step, sample_state(step=step, val_loss=loss))
        kept = [c.step for c in manager.checkpoints()]
        # last two (4, 5) plus the best-validation one (2)
        assert kept == [2, 4, 5]
        assert manager.best().step == 2

    def test_best_ignores_nan_losses(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=5)
        manager.save(1, sample_state(step=1))  # nan val loss
        manager.save(2, sample_state(step=2, val_loss=0.7))
        assert manager.best().step == 2

    def test_load_latest_raises_on_corrupt_newest(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=5)
        manager.save(1, sample_state(step=1))
        path = manager.save(2, sample_state(step=2))
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        # silently resuming from step 1 would be worse than failing
        with pytest.raises(CheckpointError):
            manager.load_latest()

    def test_ignores_foreign_files(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=2)
        manager.save(1, sample_state(step=1))
        (tmp_path / "notes.txt").write_text("keep me")
        (tmp_path / "state-5.npz.tmp-123").write_bytes(b"partial")
        assert [c.step for c in manager.checkpoints()] == [1]
        manager.prune()
        assert (tmp_path / "notes.txt").exists()
