"""The chaos gate: kill BNN detector training at random steps, resume,
and demand bit-identical final weights (ISSUE acceptance criterion).

The heavy lifting lives in :mod:`repro.train.parity` so CI can also run
it as a standalone quick gate (``python -m repro.train.parity``).
"""

import numpy as np
import pytest

from repro.train.parity import (
    make_detector,
    planted_dataset,
    resume_parity,
)


@pytest.mark.slow
class TestChaosGate:
    def test_kill_at_random_steps_resumes_bit_identically(self, tmp_path):
        report = resume_parity(kills=3, epochs=2, finetune_epochs=1,
                               image_size=16, base_width=4, batch_size=16,
                               n_per_class=15, chaos_seed=7,
                               work_dir=tmp_path)
        for kill in report.kills:
            assert kill.identical, (
                f"resume after kill at step {kill.kill_step} "
                f"({kill.phase} phase) diverged from the reference run"
            )
        # the gate must cover the biased fine-tune phase, not just main
        assert any(k.phase == "finetune" for k in report.kills)
        assert report.truncation_refused
        assert report.ok


@pytest.mark.slow
def test_resumed_history_spans_both_runs(tmp_path):
    """The resumed detector's History carries the pre-kill epochs and a
    resume event — the run looks continuous to telemetry."""
    dataset = planted_dataset(10, 16, np.random.default_rng(0))

    class Crash(RuntimeError):
        pass

    def bomb(step):
        if step == 3:
            raise Crash()

    victim = make_detector(epochs=2, finetune_epochs=1,
                           checkpoint_dir=tmp_path, step_hook=bomb)
    with pytest.raises(Crash):
        victim.fit(dataset, np.random.default_rng(1))

    survivor = make_detector(epochs=2, finetune_epochs=1,
                             checkpoint_dir=tmp_path, resume=True)
    survivor.fit(dataset, np.random.default_rng(1))
    history = survivor.history
    assert history.epochs == 3  # 2 main + 1 finetune, pre-kill included
    assert any(e["kind"] == "resume" for e in history.events)
