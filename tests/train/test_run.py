"""Tests for the TrainingRun orchestrator: parity with the plain
trainer, divergence rollback, preemption, and resume semantics."""

import os
import signal

import numpy as np
import pytest

from repro.nn import (
    ArrayDataset,
    DataLoader,
    Dense,
    NAdam,
    ReduceLROnPlateau,
    ReLU,
    Sequential,
    Trainer,
)
from repro.nn.serialization import state_checksum
from repro.train import (
    DivergenceError,
    PreemptedError,
    TrainingPhase,
    TrainingRun,
)


def blob_dataset(n=48, seed=3):
    rng = np.random.default_rng(seed)
    x = np.concatenate([
        rng.normal(-1.0, size=(n // 2, 4)),
        rng.normal(+1.0, size=(n // 2, 4)),
    ])
    y = np.concatenate([np.zeros(n // 2, int), np.ones(n // 2, int)])
    order = rng.permutation(n)
    return ArrayDataset(x[order], y[order])


def make_model(seed=9):
    rng = np.random.default_rng(seed)
    return Sequential(Dense(4, 8, rng=rng), ReLU(), Dense(8, 2, rng=rng))


def make_phase(model, name="main", epochs=2, lr=0.01, loader_seed=11,
               with_val=False, max_grad_norm=None, data_seed=3):
    ds = blob_dataset(seed=data_seed)
    optimizer = NAdam(model.parameters(), lr=lr)
    scheduler = ReduceLROnPlateau(optimizer, factor=0.5, patience=1)
    trainer = Trainer(model, optimizer, scheduler=scheduler,
                      max_grad_norm=max_grad_norm)
    loader = DataLoader(ds, 16, rng=np.random.default_rng(loader_seed))
    val = DataLoader(ds, 16, shuffle=False) if with_val else None
    return TrainingPhase(name=name, epochs=epochs, trainer=trainer,
                         train_loader=loader, val_loader=val)


class TestConstruction:
    def test_no_phases_raises(self):
        with pytest.raises(ValueError, match="at least one"):
            TrainingRun(make_model(), [])

    def test_duplicate_phase_names_raise(self):
        model = make_model()
        with pytest.raises(ValueError, match="unique"):
            TrainingRun(model, [make_phase(model), make_phase(model)])

    def test_foreign_model_in_phase_raises(self):
        model, other = make_model(), make_model()
        with pytest.raises(ValueError, match="different model"):
            TrainingRun(model, [make_phase(other)])

    def test_zero_epoch_phase_raises(self):
        with pytest.raises(ValueError, match="epochs"):
            make_phase(make_model(), epochs=0)

    def test_invalid_lr_cut_raises(self):
        model = make_model()
        with pytest.raises(ValueError, match="lr_cut"):
            TrainingRun(model, [make_phase(model)], lr_cut=1.5)


class TestParityWithTrainer:
    def test_single_phase_matches_plain_fit(self):
        """TrainingRun without checkpointing is the Trainer loop."""
        model_a = make_model()
        phase = make_phase(model_a, epochs=3, with_val=True)
        history_a = TrainingRun(model_a, [phase]).run()

        model_b = make_model()
        ref = make_phase(model_b, epochs=3, with_val=True)
        history_b = ref.trainer.fit(ref.train_loader, epochs=3,
                                    val_loader=ref.val_loader)

        assert state_checksum(model_a.state_dict()) == state_checksum(
            model_b.state_dict()
        )
        assert history_a.train_loss == history_b.train_loss
        assert history_a.val_loss == history_b.val_loss
        assert history_a.lr == history_b.lr

    def test_two_phases_run_in_order(self):
        model = make_model()
        phases = [
            make_phase(model, name="main", epochs=2),
            make_phase(model, name="finetune", epochs=1, lr=0.001,
                       loader_seed=12),
        ]
        history = TrainingRun(model, phases).run()
        assert history.epochs == 3
        assert history.lr[-1] == pytest.approx(0.001)


class TestResume:
    def test_resume_without_dir_raises(self):
        model = make_model()
        run = TrainingRun(model, [make_phase(model)])
        with pytest.raises(ValueError, match="checkpoint_dir"):
            run.run(resume=True)

    def test_fresh_start_refuses_dirty_directory(self, tmp_path):
        model = make_model()
        TrainingRun(model, [make_phase(model, epochs=1)],
                    checkpoint_dir=tmp_path).run()
        model2 = make_model()
        run2 = TrainingRun(model2, [make_phase(model2, epochs=1)],
                           checkpoint_dir=tmp_path)
        with pytest.raises(ValueError, match="resume=True"):
            run2.run()

    def test_resume_empty_directory_starts_fresh(self, tmp_path):
        model = make_model()
        history = TrainingRun(model, [make_phase(model, epochs=1)],
                              checkpoint_dir=tmp_path).run(resume=True)
        assert history.epochs == 1
        assert not any(e["kind"] == "resume" for e in history.events)

    def test_resume_completed_run_is_noop(self, tmp_path):
        model = make_model()
        TrainingRun(model, [make_phase(model, epochs=2)],
                    checkpoint_dir=tmp_path).run()
        digest = state_checksum(model.state_dict())

        model2 = make_model()
        history = TrainingRun(model2, [make_phase(model2, epochs=2)],
                              checkpoint_dir=tmp_path).run(resume=True)
        assert state_checksum(model2.state_dict()) == digest
        assert history.epochs == 2  # restored, not retrained

    def test_schedule_mismatch_refused(self, tmp_path):
        model = make_model()
        TrainingRun(model, [make_phase(model, epochs=2)],
                    checkpoint_dir=tmp_path).run()
        model2 = make_model()
        run2 = TrainingRun(model2, [make_phase(model2, epochs=5)],
                           checkpoint_dir=tmp_path)
        with pytest.raises(ValueError, match="different phase schedule"):
            run2.run(resume=True)


class TestPreemption:
    @staticmethod
    def _reference_digest(epochs=3):
        model = make_model()
        TrainingRun(model, [make_phase(model, epochs=epochs)]).run()
        return state_checksum(model.state_dict())

    def test_preempted_mid_epoch_then_resume_bit_identical(self, tmp_path):
        reference = self._reference_digest()

        model = make_model()
        holder = {}
        run = TrainingRun(
            model, [make_phase(model, epochs=3)], checkpoint_dir=tmp_path,
            step_hook=lambda step: holder["run"].request_preemption()
            if step == 4 else None,
        )
        holder["run"] = run
        with pytest.raises(PreemptedError) as excinfo:
            run.run()
        assert excinfo.value.checkpoint is not None
        assert excinfo.value.checkpoint.exists()
        assert "resume" in str(excinfo.value)

        model2 = make_model()
        history = TrainingRun(model2, [make_phase(model2, epochs=3)],
                              checkpoint_dir=tmp_path).run(resume=True)
        assert state_checksum(model2.state_dict()) == reference
        assert any(e["kind"] == "resume" for e in history.events)

    def test_preemption_without_manager_not_resumable(self):
        model = make_model()
        holder = {}
        run = TrainingRun(
            model, [make_phase(model, epochs=3)],
            step_hook=lambda step: holder["run"].request_preemption()
            if step == 2 else None,
        )
        holder["run"] = run
        with pytest.raises(PreemptedError) as excinfo:
            run.run()
        assert excinfo.value.checkpoint is None
        assert "not resumable" in str(excinfo.value)

    def test_sigint_translates_to_preemption(self, tmp_path):
        previous = signal.getsignal(signal.SIGINT)
        model = make_model()
        run = TrainingRun(
            model, [make_phase(model, epochs=3)], checkpoint_dir=tmp_path,
            handle_signals=True,
            step_hook=lambda step: os.kill(os.getpid(), signal.SIGINT)
            if step == 3 else None,
        )
        with pytest.raises(PreemptedError, match="SIGINT"):
            run.run()
        # original handler restored afterwards
        assert signal.getsignal(signal.SIGINT) is previous

    def test_crash_then_resume_via_step_checkpoints(self, tmp_path):
        """A hard crash (raising hook) recovers from mid-epoch saves."""
        reference = self._reference_digest()

        class Boom(RuntimeError):
            pass

        def bomb(step):
            if step == 5:
                raise Boom()

        model = make_model()
        run = TrainingRun(model, [make_phase(model, epochs=3)],
                          checkpoint_dir=tmp_path, checkpoint_every_steps=2,
                          step_hook=bomb)
        with pytest.raises(Boom):
            run.run()

        model2 = make_model()
        TrainingRun(model2, [make_phase(model2, epochs=3)],
                    checkpoint_dir=tmp_path).run(resume=True)
        assert state_checksum(model2.state_dict()) == reference


class TestDivergence:
    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_rollback_recovers_and_records_event(self, tmp_path):
        model = make_model()
        poisoned = {"done": False}

        def poison(step):
            # corrupt the weights once; the next batch's loss is non-finite
            if step == 2 and not poisoned["done"]:
                poisoned["done"] = True
                model.layers[0].weight.data[...] = np.inf

        phase = make_phase(model, epochs=2, lr=0.01)
        run = TrainingRun(model, [phase], checkpoint_dir=tmp_path,
                          step_hook=poison, max_retries=3, lr_cut=0.5)
        history = run.run()
        assert history.epochs == 2  # completed despite the divergence
        rollbacks = [e for e in history.events
                     if e["kind"] == "divergence_rollback"]
        assert len(rollbacks) == 1
        assert rollbacks[0]["retry"] == 1
        assert rollbacks[0]["lr"] == pytest.approx(0.005)
        assert phase.trainer.optimizer.lr <= 0.005  # cut held
        assert np.all(np.isfinite(model.layers[0].weight.data))

    def test_retries_exhausted_raises_divergence_error(self):
        model = make_model()
        # a gradient limit nothing can satisfy: every epoch attempt fails
        phase = make_phase(model, epochs=1, max_grad_norm=1e-12)
        run = TrainingRun(model, [phase], max_retries=2)
        with pytest.raises(DivergenceError) as excinfo:
            run.run()
        assert excinfo.value.retries == 2
        assert "giving up" in str(excinfo.value)

    def test_rollback_restores_last_good_weights(self):
        model = make_model()
        phase = make_phase(model, epochs=1, max_grad_norm=1e-12)
        before = state_checksum(model.state_dict())
        run = TrainingRun(model, [phase], max_retries=1)
        with pytest.raises(DivergenceError):
            run.run()
        # no partial update survived the failed attempts
        assert state_checksum(model.state_dict()) == before
